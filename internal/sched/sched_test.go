package sched

import (
	"strings"
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

// small builds a feature-complete schedule on 2x2x2: an intra-node CMA
// send, an offload-loopback send, pinned rail pieces, a pull, and a
// staging copy — every IR feature the serializers must round-trip.
func small(t *testing.T) *Schedule {
	t.Helper()
	topo := topology.New(2, 2, 2)
	b := NewBuilder("feature", topo, 100)
	// Step 0: direct spread inside each node (CMA one way, loopback HCA
	// the other) and each rank 0/1 block to the other node's ranks.
	b.Step()
	b.Send(0, 1, 0).SendHCA(1, 0, 1, 1)
	b.Send(2, 3, 2).SendHCA(3, 2, 3, 1)
	// Step 1: node blocks cross the wire as pinned rail pieces.
	b.Step()
	b.RailPiece(0, 2, 0, 2, 0, 100, 0).RailPiece(0, 2, 0, 2, 100, 100, 1)
	b.RailPiece(2, 0, 2, 2, 0, 100, 0).RailPiece(2, 0, 2, 2, 100, 100, 1)
	// Step 2: leaders stage and peers pull the remote node block.
	b.Step()
	b.Copy(0, 2, 2).Pull(0, 1, 2, 2)
	b.Copy(2, 0, 2).Pull(2, 3, 0, 2)
	s, err := b.Build()
	if err != nil {
		t.Fatalf("feature schedule does not build: %v", err)
	}
	return s
}

func TestTextRoundTrip(t *testing.T) {
	s := small(t)
	text := s.String()
	s2, err := Parse(text)
	if err != nil {
		t.Fatalf("String output does not parse: %v\n%s", err, text)
	}
	if s2.String() != text {
		t.Fatalf("String/Parse not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, s2.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := small(t)
	js, err := s.JSON()
	if err != nil {
		t.Fatalf("JSON render: %v", err)
	}
	s2, err := Parse(string(js))
	if err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, js)
	}
	if s2.String() != s.String() {
		t.Fatalf("JSON round trip changed the schedule:\nwant:\n%s\ngot:\n%s", s, s2)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"empty", "", "empty input"},
		{"no header", "step\n", "before schedule header"},
		{"bad directive", "schedule x nodes=1 ppn=2 msg=4\nwat\n", "unknown directive"},
		{"bad key", "schedule x nodes=1 ppn=2 msg=4 zig=3\n", "unknown key"},
		{"bad number", "schedule x nodes=1 ppn=2 msg=banana\n", "bad msg value"},
		{"xfer outside step", "schedule x nodes=1 ppn=2 msg=4\nxfer src=0 dst=1 first=0 count=1\n", "outside a step"},
		{"self transfer", "schedule x nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=0 first=0 count=1\n", "self transfer"},
		{"rank range", "schedule x nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=7 first=0 count=1\n", "out of range"},
		{"window", "schedule x nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1 off=2 len=9\n", "byte window"},
		{"lone off", "schedule x nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1 off=2\n", "off and len"},
		{"bad via", "schedule x nodes=1 ppn=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1 via=pigeon\n", "unknown transport"},
		{"rail range", "schedule x nodes=2 ppn=1 hcas=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1 via=rail rail=5\n", "rail 5 out of range"},
		{"rail on auto", "schedule x nodes=2 ppn=1 hcas=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1 rail=1\n", "rail 1 set on"},
		{"cross-node pull", "schedule x nodes=2 ppn=1 hcas=2 msg=4\nstep\nxfer src=0 dst=1 first=0 count=1 via=pull\n", "different nodes"},
		{"huge topo", "schedule x nodes=99999999 ppn=99999999 msg=4\n", "rank limit"},
		{"bad json", "{", "bad JSON"},
		{"json layout", `{"name":"x","nodes":1,"ppn":2,"hcas":1,"layout":"diagonal","msg":4,"steps":[]}`, "unknown layout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.in)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestAnalyzeAcceptsLowerings(t *testing.T) {
	prm := netmodel.Thor()
	topos := []topology.Cluster{
		topology.New(1, 1, 1),
		topology.New(2, 2, 2),
		topology.New(4, 3, 1),
		{Nodes: 1, PPN: 4, HCAs: 2, Layout: topology.Block},
		{Nodes: 3, PPN: 2, HCAs: 2, Layout: topology.Cyclic},
	}
	for _, topo := range topos {
		for _, msg := range []int{0, 13, 65536} {
			builds := map[string]*Schedule{
				"ring": Ring(topo, msg),
				"rd":   RecursiveDoubling(topo, msg),
			}
			if topo.Layout == topology.Block || topo.Nodes == 1 {
				builds["mha"] = TwoPhaseMHA(topo, prm, msg, MHAOptions{Offload: AutoOffload})
				builds["mha-seq"] = TwoPhaseMHA(topo, prm, msg, MHAOptions{Sequential: true, Push: true})
			}
			if dr := DirectRail(topo, msg); dr != nil {
				builds["direct-rail"] = dr
			}
			for name, s := range builds {
				rep, err := Analyze(s, prm)
				if err != nil {
					t.Errorf("%s on %v msg=%d: %v", name, topo, msg, err)
					continue
				}
				if rep.Cost <= 0 {
					t.Errorf("%s on %v msg=%d: non-positive cost %v", name, topo, msg, rep.Cost)
				}
				if topo.Nodes > 1 && msg > 0 && rep.WireBytes == 0 {
					t.Errorf("%s on %v msg=%d: no wire traffic", name, topo, msg)
				}
			}
		}
	}
}

// TestAnalyzeRejectsBroken hand-breaks schedules in the three ways the
// analyzer must catch: a block never delivered, a forward of data not
// yet held, and two pinned transfers fighting over one rail endpoint.
func TestAnalyzeRejectsBroken(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(2, 2, 2)

	t.Run("missing block", func(t *testing.T) {
		s := Ring(topo, 64)
		s.Steps = s.Steps[:len(s.Steps)-1] // drop the final forwarding round
		_, err := Analyze(s, prm)
		if err == nil || !strings.Contains(err.Error(), "missing block") {
			t.Fatalf("truncated ring not rejected: %v", err)
		}
	})

	t.Run("send before hold", func(t *testing.T) {
		s := Ring(topo, 64)
		// Rank 0 forwards block 3 in the very first step; it only
		// receives block 3 at the end of that step.
		s.Steps[0].Xfers = append(s.Steps[0].Xfers,
			Transfer{Src: 0, Dst: 1, First: 3, Count: 1, Len: 64})
		_, err := Analyze(s, prm)
		if err == nil || !strings.Contains(err.Error(), "before holding it") {
			t.Fatalf("premature forward not rejected: %v", err)
		}
	})

	t.Run("stage before hold", func(t *testing.T) {
		s := Ring(topo, 64)
		s.Steps[0].Copies = append(s.Steps[0].Copies, Copy{Rank: 0, First: 2, Count: 1})
		_, err := Analyze(s, prm)
		if err == nil || !strings.Contains(err.Error(), "stages block") {
			t.Fatalf("premature staging copy not rejected: %v", err)
		}
	})

	t.Run("rail conflict tx", func(t *testing.T) {
		b := NewBuilder("conflict", topo, 64)
		b.Step()
		// Ranks 0 and 1 share node 0: both pin rail 1 for transmit.
		b.RailPiece(0, 2, 0, 1, 0, 64, 1)
		b.RailPiece(1, 3, 1, 1, 0, 64, 1)
		s, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Analyze(s, prm)
		if err == nil || !strings.Contains(err.Error(), "rail conflict") {
			t.Fatalf("tx rail conflict not rejected: %v", err)
		}
	})

	t.Run("rail conflict rx", func(t *testing.T) {
		// Three single-rank nodes: transfers from nodes 0 and 1 converge
		// on node 2's rail 0 receive engine.
		b := NewBuilder("conflict", topology.New(3, 1, 2), 64)
		b.Step()
		b.RailPiece(0, 2, 0, 1, 0, 64, 0)
		b.RailPiece(1, 2, 1, 1, 0, 64, 0)
		s, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Analyze(s, prm)
		if err == nil || !strings.Contains(err.Error(), "rail conflict") {
			t.Fatalf("rx rail conflict not rejected: %v", err)
		}
	})
}

// TestPartialWindows checks the byte-interval bookkeeping: a block
// forwarded as two half-windows in one step counts as held afterwards,
// but a half-delivered block does not satisfy completeness.
func TestPartialWindows(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(2, 1, 2)
	b := NewBuilder("halves", topo, 100)
	b.Step()
	b.RailPiece(0, 1, 0, 1, 0, 50, 0).RailPiece(0, 1, 0, 1, 50, 50, 1)
	b.RailPiece(1, 0, 1, 1, 0, 50, 0).RailPiece(1, 0, 1, 1, 50, 50, 1)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(s, prm); err != nil {
		t.Fatalf("split delivery rejected: %v", err)
	}

	// Remove one half: rank 1 now ends with half of block 0.
	s.Steps[0].Xfers = s.Steps[0].Xfers[1:]
	if _, err := Analyze(s, prm); err == nil || !strings.Contains(err.Error(), "missing block") {
		t.Fatalf("half-delivered block not rejected: %v", err)
	}
}

func TestRingFallbackForNonPow2(t *testing.T) {
	topo := topology.New(1, 6, 1)
	if s := RecursiveDoubling(topo, 8); s.Name != "ring" {
		t.Fatalf("non-power-of-two RD lowered to %q, want ring fallback", s.Name)
	}
	if s := RecursiveDoubling(topology.New(1, 8, 1), 8); s.Name != "rd" {
		t.Fatalf("power-of-two RD lowered to %q", s.Name)
	}
}
