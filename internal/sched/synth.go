package sched

import (
	"fmt"
	"sort"

	"mha/internal/netmodel"
	"mha/internal/sim"
	"mha/internal/topology"
)

// The greedy/beam synthesizer: seed the beam with every lowered
// hand-written design (plus the greedy direct-rail construction), score
// each with the static analyzer, then locally mutate the best plans —
// step fusion, pinned-rail reassignment, stripe splitting — keeping the
// cheapest Beam survivors per round. The final pick simulates the
// finalists and the lowered baselines, so the emitted schedule's
// simulated makespan is never worse than the best lowering's (the
// measured pick is the schedule-space analogue of the tuner's measured
// dispatch).

// Candidate is one scored schedule.
type Candidate struct {
	Name  string
	Sched *Schedule
	// Cost is the analyzer's alpha-beta prediction; Makespan is the
	// simulated runtime (zero until measured — only finalists and the
	// lowered baselines are simulated).
	Cost     sim.Duration
	Makespan sim.Duration
}

// SynthOptions tunes the search.
type SynthOptions struct {
	// Beam is the number of survivors per round (default 4).
	Beam int
	// Rounds bounds the mutation rounds (default 6; the search also
	// stops when a round improves nothing).
	Rounds int
	// NoMeasure skips the final simulation pass: the best candidate is
	// then chosen purely by analyzer cost and Makespan stays zero.
	NoMeasure bool
	// Health is the steady rail-health vector (see ValidHealth): the
	// seeds are repaired off dead rails (ApplyHealth), every candidate
	// is priced health-aware, mutations never pin a dead rail, and the
	// final measurement runs under the equivalent fault schedule. Nil
	// means all rails healthy.
	Health []float64
	// PruneMargin, when positive, is the analytic-pruning knob the
	// autotuner service uses: if the cheapest candidate's analyzer cost
	// undercuts every other finalist's by more than this fraction, the
	// simulation pass is skipped and the analytic pick is emitted with
	// Pruned set (the model is only consulted when it is ambiguous).
	PruneMargin float64
}

// SynthResult is the search outcome.
type SynthResult struct {
	// Best is the emitted schedule.
	Best Candidate
	// Lowered holds the canonical hand-written lowerings (ring, rd,
	// two-phase MHA both phase-2 flavors), measured unless NoMeasure —
	// the baselines the acceptance comparison is made against.
	Lowered []Candidate
	// Seeds holds every analyzer-scored starting point, cheapest first.
	Seeds []Candidate
	// Pruned records that the simulation pass was skipped because the
	// analytic margin exceeded PruneMargin (or NoMeasure was set).
	Pruned bool
}

func (o SynthOptions) withDefaults() SynthOptions {
	if o.Beam <= 0 {
		o.Beam = 4
	}
	if o.Rounds <= 0 {
		o.Rounds = 6
	}
	return o
}

// Synthesize searches schedule space for the given machine and message
// size and returns the best plan found together with the scored
// baselines.
func Synthesize(topo topology.Cluster, prm *netmodel.Params, msg int, opt SynthOptions) (*SynthResult, error) {
	if prm == nil {
		prm = netmodel.Thor()
	}
	opt = opt.withDefaults()
	if err := ValidHealth(opt.Health, topo.HCAs); err != nil {
		return nil, err
	}
	L := topo.PPN
	pow2N := topo.Nodes > 1 && topo.Nodes&(topo.Nodes-1) == 0

	// Seed pool: the canonical lowerings plus an MHA option grid and the
	// greedy direct construction, each repaired off dead rails before it
	// is scored.
	var seeds []Candidate
	addSeed := func(name string, s *Schedule) {
		if s == nil {
			return
		}
		for _, c := range seeds {
			if c.Name == name {
				return
			}
		}
		s = ApplyHealth(s, opt.Health)
		rep, err := AnalyzeHealth(s, prm, opt.Health)
		if err != nil {
			// A lowering that fails its own analysis is a bug; surface it
			// instead of silently searching around it.
			panic(fmt.Sprintf("sched: seed %s invalid: %v", name, err))
		}
		seeds = append(seeds, Candidate{Name: name, Sched: s, Cost: rep.Cost})
	}

	addSeed("ring", Ring(topo, msg))
	if rd := RecursiveDoubling(topo, msg); rd.Name == "rd" {
		addSeed("rd", rd)
	}
	mhaOK := topo.Nodes == 1 || topo.Layout == topology.Block
	if mhaOK {
		addSeed("mha-ring", TwoPhaseMHA(topo, prm, msg, MHAOptions{Offload: AutoOffload}))
		if pow2N {
			addSeed("mha-rd", TwoPhaseMHA(topo, prm, msg, MHAOptions{Phase2: Phase2RD, Offload: AutoOffload}))
		}
		// Option grid around the canonical MHA plans.
		offloads := []int{0}
		if L > 1 {
			offloads = append(offloads, L-1)
		}
		for _, d := range offloads {
			for _, p2 := range []Phase2Alg{Phase2Ring, Phase2RD} {
				if p2 == Phase2RD && !pow2N {
					continue
				}
				for _, seq := range []bool{false, true} {
					for _, push := range []bool{false, true} {
						o := MHAOptions{Phase2: p2, Offload: d, Sequential: seq, Push: push}
						s := TwoPhaseMHA(topo, prm, msg, o)
						addSeed(fmt.Sprintf("%s-d%d", s.Name, d), s)
					}
				}
			}
		}
	}
	addSeed("direct-rail", DirectRail(topo, msg))

	sortCandidates(seeds)

	// The canonical hand-written lowerings serve as the comparison
	// baselines; recover them from the seed pool by name.
	var lowered []Candidate
	for _, name := range []string{"ring", "rd", "mha-ring", "mha-rd"} {
		for _, c := range seeds {
			if c.Name == name {
				lowered = append(lowered, c)
			}
		}
	}

	// Beam search over local mutations.
	beam := append([]Candidate(nil), seeds...)
	if len(beam) > opt.Beam {
		beam = beam[:opt.Beam]
	}
	best := beam[0]
	for round := 0; round < opt.Rounds; round++ {
		var next []Candidate
		next = append(next, beam...)
		for _, c := range beam {
			for _, mut := range mutate(c, prm, opt.Health) {
				next = append(next, mut)
			}
		}
		sortCandidates(next)
		next = dedupe(next)
		if len(next) > opt.Beam {
			next = next[:opt.Beam]
		}
		beam = next
		if beam[0].Cost >= best.Cost {
			break
		}
		best = beam[0]
	}

	res := &SynthResult{Lowered: lowered, Seeds: seeds}
	if opt.NoMeasure {
		res.Best, res.Pruned = best, true
		return res, nil
	}

	// Measured final pick: simulate the finalists and every lowered
	// baseline, choose the fastest. Including the baselines makes the
	// "never worse than the best hand-written lowering" guarantee
	// structural rather than hoped-for.
	finalists := append([]Candidate(nil), beam...)
	finalists = append(finalists, lowered...)
	finalists = dedupe(finalists)

	// Analytic pruning: when the model already separates the winner from
	// every rival by more than the margin, skip the simulations.
	if opt.PruneMargin > 0 {
		sortCandidates(finalists)
		margin := sim.Duration(float64(finalists[0].Cost) * (1 + opt.PruneMargin))
		if len(finalists) == 1 || finalists[1].Cost > margin {
			res.Best, res.Pruned = finalists[0], true
			return res, nil
		}
	}
	for i := range finalists {
		mk, err := SimulateHealth(topo, prm, finalists[i].Sched, opt.Health)
		if err != nil {
			return nil, fmt.Errorf("sched: simulating candidate %s: %v", finalists[i].Name, err)
		}
		finalists[i].Makespan = mk
	}
	for i := range res.Lowered {
		for _, f := range finalists {
			if f.Name == res.Lowered[i].Name {
				res.Lowered[i].Makespan = f.Makespan
			}
		}
	}
	sort.SliceStable(finalists, func(i, j int) bool {
		if finalists[i].Makespan != finalists[j].Makespan {
			return finalists[i].Makespan < finalists[j].Makespan
		}
		if finalists[i].Cost != finalists[j].Cost {
			return finalists[i].Cost < finalists[j].Cost
		}
		return finalists[i].Name < finalists[j].Name
	})
	res.Best = finalists[0]
	return res, nil
}

func sortCandidates(cs []Candidate) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].Cost != cs[j].Cost {
			return cs[i].Cost < cs[j].Cost
		}
		return cs[i].Name < cs[j].Name
	})
}

func dedupe(cs []Candidate) []Candidate {
	seen := map[string]bool{}
	out := cs[:0]
	for _, c := range cs {
		if seen[c.Name] {
			continue
		}
		seen[c.Name] = true
		out = append(out, c)
	}
	return out
}

// mutationBudget bounds how many neighbors one candidate contributes
// per round, and fusion is skipped for schedules whose size would make
// re-analysis dominate the search.
const (
	mutationBudget = 8
	fuseMaxSteps   = 48
)

// mutate generates improved neighbors of a candidate: adjacent-step
// fusion, moving a pinned transfer off its rail, and splitting a large
// pinned transfer across an idle rail. Only mutants the analyzer
// accepts with a strictly lower cost survive; under a health vector the
// pricing is health-aware and dead rails are never pinned, so the search
// naturally migrates pinned traffic onto the surviving rails.
func mutate(c Candidate, prm *netmodel.Params, health []float64) []Candidate {
	var out []Candidate
	try := func(name string, s *Schedule) bool {
		if len(out) >= mutationBudget {
			return false
		}
		rep, err := AnalyzeHealth(s, prm, health)
		if err != nil || rep.Cost >= c.Cost {
			return true // keep scanning other mutations
		}
		out = append(out, Candidate{Name: name, Sched: s, Cost: rep.Cost})
		return true
	}

	// Step fusion: merging steps i and i+1 removes a synchronization
	// point; the analyzer rejects the merge when step i+1 consumed what
	// step i delivered.
	if len(c.Sched.Steps) <= fuseMaxSteps {
		for i := 0; i+1 < len(c.Sched.Steps); i++ {
			s := c.Sched.Clone()
			s.Steps[i].Xfers = append(s.Steps[i].Xfers, s.Steps[i+1].Xfers...)
			s.Steps[i].Copies = append(s.Steps[i].Copies, s.Steps[i+1].Copies...)
			s.Steps = append(s.Steps[:i+1], s.Steps[i+2:]...)
			s.Name = fmt.Sprintf("%s+f%d", c.Name, i)
			if !try(s.Name, s) {
				return out
			}
		}
	}

	// Rail reassignment and stripe splitting on pinned transfers.
	moves, splits := 0, 0
	for si := range c.Sched.Steps {
		st := &c.Sched.Steps[si]
		for xi := range st.Xfers {
			t := st.Xfers[xi]
			if t.Via != ViaRail {
				continue
			}
			if moves < mutationBudget {
				for r := 0; r < c.Sched.Topo.HCAs; r++ {
					if r == t.Rail || healthOf(health, r) <= 0 {
						continue
					}
					s := c.Sched.Clone()
					s.Steps[si].Xfers[xi].Rail = r
					s.Name = fmt.Sprintf("%s+r%d.%d", c.Name, si, xi)
					if !try(s.Name, s) {
						return out
					}
					moves++
					break
				}
			}
			if splits < mutationBudget && t.Len >= 2*prm.StripeThreshold {
				for r := 0; r < c.Sched.Topo.HCAs; r++ {
					if r == t.Rail || healthOf(health, r) <= 0 {
						continue
					}
					s := c.Sched.Clone()
					half := t.Len / 2
					s.Steps[si].Xfers[xi].Len = half
					extra := t
					extra.Off, extra.Len, extra.Rail = t.Off+half, t.Len-half, r
					s.Steps[si].Xfers = append(s.Steps[si].Xfers, extra)
					s.Name = fmt.Sprintf("%s+s%d.%d", c.Name, si, xi)
					if !try(s.Name, s) {
						return out
					}
					splits++
					break
				}
			}
		}
	}
	return out
}
