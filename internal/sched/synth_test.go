package sched

import (
	"testing"

	"mha/internal/netmodel"
	"mha/internal/topology"
)

// TestSynthesizeBeatsLowerings is the acceptance check for the
// synthesizer: on multi-node multi-rail machines at a large message
// size, the emitted schedule is valid and its simulated makespan is no
// worse than the best hand-written lowering's (ties allowed).
func TestSynthesizeBeatsLowerings(t *testing.T) {
	prm := netmodel.Thor()
	const msg = 256 << 10
	for _, topo := range []topology.Cluster{
		topology.New(2, 2, 2),
		topology.New(4, 2, 2),
	} {
		res, err := Synthesize(topo, prm, msg, SynthOptions{})
		if err != nil {
			t.Fatalf("synthesize on %v: %v", topo, err)
		}
		if len(res.Lowered) == 0 {
			t.Fatalf("no lowered baselines on %v", topo)
		}
		if _, err := Analyze(res.Best.Sched, prm); err != nil {
			t.Errorf("emitted schedule %s invalid: %v", res.Best.Name, err)
		}
		bestHand := res.Lowered[0]
		for _, c := range res.Lowered[1:] {
			if c.Makespan < bestHand.Makespan {
				bestHand = c
			}
		}
		if bestHand.Makespan <= 0 {
			t.Fatalf("lowered baseline %s not measured", bestHand.Name)
		}
		if res.Best.Makespan > bestHand.Makespan {
			t.Errorf("on %v: synthesized %s makespan %v worse than hand-written %s %v",
				topo, res.Best.Name, res.Best.Makespan, bestHand.Name, bestHand.Makespan)
		}
		t.Logf("%v: best %s cost=%v makespan=%v (best hand-written %s makespan=%v)",
			topo, res.Best.Name, res.Best.Cost, res.Best.Makespan, bestHand.Name, bestHand.Makespan)
	}
}

// TestAnalyzerSimAgreement checks model fidelity where it matters for
// dispatch: over the lowered designs, the analyzer's cheapest variant
// is also the simulator's fastest, at two machine scales.
func TestAnalyzerSimAgreement(t *testing.T) {
	prm := netmodel.Thor()
	const msg = 256 << 10
	for _, topo := range []topology.Cluster{
		topology.New(2, 2, 2),
		topology.New(4, 2, 2),
	} {
		res, err := Synthesize(topo, prm, msg, SynthOptions{})
		if err != nil {
			t.Fatalf("synthesize on %v: %v", topo, err)
		}
		byCost, bySim := res.Lowered[0], res.Lowered[0]
		for _, c := range res.Lowered[1:] {
			if c.Cost < byCost.Cost {
				byCost = c
			}
			if c.Makespan < bySim.Makespan {
				bySim = c
			}
		}
		if byCost.Name != bySim.Name {
			t.Errorf("on %v: analyzer prefers %s (%v) but simulator prefers %s (%v)",
				topo, byCost.Name, byCost.Cost, bySim.Name, bySim.Makespan)
		}
		for _, c := range res.Lowered {
			t.Logf("%v %-10s cost=%8v makespan=%8v", topo, c.Name, c.Cost, c.Makespan)
		}
	}
}
