package sim

import (
	"fmt"
	"strings"
)

// A ClockWatcher observes every clock advance of the engine: it is invoked
// with the time being left and the time being entered, strictly before the
// advance takes effect. The watcher runs on the scheduler goroutine with
// the engine lock held, so it must not call engine methods; recording the
// pair (e.g. to assert monotonicity afterwards) is the intended use.
type ClockWatcher func(from, to Time)

// SetClockWatcher installs fn as the engine's clock observer (nil removes
// it). Install before Run; the engine never advances the clock earlier.
func (e *Engine) SetClockWatcher(fn ClockWatcher) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.watcher = fn
}

// SetItemDescriber installs fn as the renderer CheckQuiescent uses to
// describe leaked mailbox items (nil restores the anonymous count-only
// report). A layer that knows its payload types — e.g. the MPI runtime,
// whose mailboxes carry messages tagged with an owning communicator —
// installs a describer so a leak under concurrent jobs names the job that
// sent it instead of reporting an undifferentiated count.
func (e *Engine) SetItemDescriber(fn func(interface{}) string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.describe = fn
}

// CheckQuiescent audits the engine after Run has returned and reports every
// violated teardown invariant:
//
//   - every spawned process finished (no leaked simulated goroutines),
//   - no events remain pending,
//   - every resource is idle (freeAt <= now) and its cumulative busy time
//     does not exceed the makespan (FIFO conservation: occupations of one
//     resource never overlap),
//   - every mailbox is drained (no delivered-but-unclaimed messages).
//
// A nil error means the run tore down cleanly. Calling it before Run, or
// after a Run that returned an error, reports those states too.
func (e *Engine) CheckQuiescent() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var bad []string
	if !e.started {
		bad = append(bad, "Run was never called")
	}
	if e.failure != nil {
		bad = append(bad, fmt.Sprintf("run failed: %v", e.failure))
	}
	if e.finished != len(e.procs) {
		bad = append(bad, fmt.Sprintf("%d of %d processes never finished",
			len(e.procs)-e.finished, len(e.procs)))
	}
	if n := e.events.Len(); n > 0 {
		bad = append(bad, fmt.Sprintf("%d events still pending at t=%v", n, e.now))
	}
	for _, r := range e.resources {
		owned := ""
		if r.lastOwner != "" {
			owned = fmt.Sprintf(" (last acquired by %s)", r.lastOwner)
		}
		if r.freeAt > e.now {
			bad = append(bad, fmt.Sprintf("resource %s busy until %v, past end of run %v%s",
				r.name, r.freeAt, e.now, owned))
		}
		if r.busy < 0 || Time(r.busy) > e.now {
			bad = append(bad, fmt.Sprintf("resource %s busy time %v exceeds makespan %v%s",
				r.name, r.busy, e.now, owned))
		}
	}
	for _, m := range e.mailboxes {
		if n := len(m.items); n > 0 {
			line := fmt.Sprintf("mailbox %s holds %d unclaimed messages", m.name, n)
			if m.owner != "" {
				line += fmt.Sprintf(" (owner %s)", m.owner)
			}
			if e.describe != nil {
				line += ": " + e.describe(m.items[0].v)
				if n > 1 {
					line += ", ..."
				}
			}
			bad = append(bad, line)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("sim: not quiescent: %s", strings.Join(bad, "; "))
}
