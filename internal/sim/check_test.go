package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestCheckQuiescentClean(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("link")
	m := e.NewMailbox("inbox")
	e.Spawn("sender", func(p *Proc) {
		_, end := r.Acquire(10 * Microsecond)
		p.WaitUntil(end)
		m.PutAt(end, "payload")
	})
	e.Spawn("receiver", func(p *Proc) {
		m.Get(p, "payload", func(interface{}) bool { return true })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckQuiescent(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
}

func TestCheckQuiescentBeforeRun(t *testing.T) {
	e := NewEngine()
	err := e.CheckQuiescent()
	if err == nil || !strings.Contains(err.Error(), "Run was never called") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckQuiescentLeakedMessage(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("inbox")
	e.Spawn("sender", func(p *Proc) {
		m.PutAt(p.Now(), "orphan")
		p.Sleep(Microsecond) // stay alive past the delivery event
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	err := e.CheckQuiescent()
	if err == nil || !strings.Contains(err.Error(), "unclaimed") {
		t.Fatalf("leaked message not flagged: %v", err)
	}
}

func TestCheckQuiescentDeadlock(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("inbox")
	e.Spawn("stuck", func(p *Proc) {
		m.Get(p, "a message that never comes", func(interface{}) bool { return true })
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected a deadlock error")
	}
	err := e.CheckQuiescent()
	if err == nil || !strings.Contains(err.Error(), "never finished") {
		t.Fatalf("unfinished process not flagged: %v", err)
	}
}

func TestClockWatcherObservesMonotoneAdvances(t *testing.T) {
	e := NewEngine()
	type adv struct{ from, to Time }
	var seen []adv
	e.SetClockWatcher(func(from, to Time) { seen = append(seen, adv{from, to}) })
	e.Spawn("p", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		p.Sleep(5 * Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 2 {
		t.Fatalf("watcher saw %d advances, want >= 2", len(seen))
	}
	var last Time
	for _, a := range seen {
		if a.to <= a.from {
			t.Fatalf("non-advance observed: %v -> %v", a.from, a.to)
		}
		if a.from < last {
			t.Fatalf("clock went back: advance from %v after reaching %v", a.from, last)
		}
		last = a.to
	}
	if last != e.Stats().Now {
		t.Fatalf("last observed advance ends at %v, engine at %v", last, e.Stats().Now)
	}
}

// TestCheckQuiescentMailboxAttribution: a leaked mailbox report names the
// mailbox's owner and, when a describer is installed, renders the first
// unclaimed item so a multi-tenant leak is attributable to a job.
func TestCheckQuiescentMailboxAttribution(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("ctl.3")
	m.SetOwner("cluster-scheduler")
	e.SetItemDescriber(func(v interface{}) string { return "cmd=" + v.(string) })
	e.Spawn("leaker", func(p *Proc) {
		m.PutAt(p.Now(), "assign")
		m.PutAt(p.Now(), "stop")
		p.Sleep(Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	err := e.CheckQuiescent()
	if err == nil {
		t.Fatal("leak not flagged")
	}
	for _, want := range []string{"(owner cluster-scheduler)", "cmd=assign", ", ..."} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("audit %q missing %q", err, want)
		}
	}
	if got := m.PendingItems(); len(got) != 2 || got[0] != "assign" || got[1] != "stop" {
		t.Fatalf("PendingItems = %v, want [assign stop]", got)
	}
}

// TestCheckQuiescentResourceAttribution: a rail left busy past the end of
// the run is blamed on the party that last acquired it.
func TestCheckQuiescentResourceAttribution(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("node1.rail0.tx")
	e.Spawn("p", func(p *Proc) {
		r.Acquire(10 * Microsecond)
		r.MarkOwner("job3")
		// Exit without waiting out the occupation: the rail stays busy
		// past the end of the run.
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	err := e.CheckQuiescent()
	if err == nil || !strings.Contains(err.Error(), "(last acquired by job3)") {
		t.Fatalf("busy rail not attributed: %v", err)
	}
	if r.LastOwner() != "job3" {
		t.Fatalf("LastOwner = %q, want job3", r.LastOwner())
	}
	r.MarkOwner("") // empty labels are ignored, not erased
	if r.LastOwner() != "job3" {
		t.Fatalf("empty MarkOwner overwrote label: %q", r.LastOwner())
	}
}

// TestCheckQuiescentEdgeCases is the table-driven audit of the teardown
// checker the explorer leans on at every terminal state: an engine with
// nothing registered, repeated audits of the same engine, and the exact
// owner-attributed leak message formats.
func TestCheckQuiescentEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *Engine
		// audits is how many times CheckQuiescent is called; every call
		// must agree (the audit is read-only, so double-teardown checks
		// are idempotent).
		audits int
		want   []string // substrings required in the error ("" slice: nil error)
	}{
		{
			name: "zero registered resources",
			build: func(t *testing.T) *Engine {
				e := NewEngine()
				e.Spawn("lone", func(p *Proc) { p.Sleep(Microsecond) })
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return e
			},
			audits: 1,
		},
		{
			name: "double teardown audit is idempotent",
			build: func(t *testing.T) *Engine {
				e := NewEngine()
				r := e.NewResource("rail")
				e.Spawn("user", func(p *Proc) {
					_, end := r.Acquire(3 * Microsecond)
					p.WaitUntil(end)
				})
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return e
			},
			audits: 2,
		},
		{
			name: "double teardown of a leaky run reports twice",
			build: func(t *testing.T) *Engine {
				e := NewEngine()
				r := e.NewResource("rail")
				e.Spawn("leaker", func(p *Proc) {
					r.Acquire(5 * Microsecond) // never waits for end
				})
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return e
			},
			audits: 2,
			want:   []string{"resource rail busy until 5.000us, past end of run 0.000us"},
		},
		{
			name: "owner-attributed resource leak format",
			build: func(t *testing.T) *Engine {
				e := NewEngine()
				r := e.NewResource("node0.rail1.tx")
				e.Spawn("rank3", func(p *Proc) {
					r.Acquire(4 * Microsecond)
					r.MarkOwner("rank3")
				})
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return e
			},
			audits: 1,
			want: []string{
				"resource node0.rail1.tx busy until 4.000us, past end of run 0.000us (last acquired by rank3)",
			},
		},
		{
			name: "owner-attributed mailbox leak with describer",
			build: func(t *testing.T) *Engine {
				e := NewEngine()
				m := e.NewMailbox("mb.r0")
				m.SetOwner("job7")
				e.SetItemDescriber(func(v interface{}) string { return "payload " + v.(string) })
				e.Spawn("sender", func(p *Proc) {
					m.PutAt(0, "x")
					m.PutAt(0, "y")
					p.Sleep(Microsecond)
				})
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return e
			},
			audits: 1,
			want: []string{
				"mailbox mb.r0 holds 2 unclaimed messages (owner job7): payload x, ...",
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := tc.build(t)
			var first error
			for i := 0; i < tc.audits; i++ {
				err := e.CheckQuiescent()
				if i == 0 {
					first = err
				} else if fmt.Sprint(err) != fmt.Sprint(first) {
					t.Fatalf("audit %d disagrees with audit 1:\n%v\nvs\n%v", i+1, err, first)
				}
			}
			if len(tc.want) == 0 {
				if first != nil {
					t.Fatalf("expected clean teardown, got %v", first)
				}
				return
			}
			if first == nil {
				t.Fatalf("expected teardown violations %q, got nil", tc.want)
			}
			for _, w := range tc.want {
				if !strings.Contains(first.Error(), w) {
					t.Errorf("error %q\nmissing substring %q", first, w)
				}
			}
		})
	}
}
