package sim

import "fmt"

// A Counter is a monotonic condition variable in virtual time. Producers
// advance it with Add or SetAtLeast; consumers block until it reaches a
// threshold with WaitGE. It models the shared-memory chunk-availability
// counters the paper's phase-3 broadcast uses: the node leader bumps the
// counter as each chunk lands in shared memory, and non-leader ranks wait
// on it before copying the chunk out.
type Counter struct {
	eng     *Engine
	name    string
	val     int64
	waiters []*counterWaiter
}

type counterWaiter struct {
	p         *Proc
	threshold int64
	released  bool
}

// NewCounter creates a named counter starting at zero.
func (e *Engine) NewCounter(name string) *Counter {
	return &Counter{eng: e, name: name}
}

// Value returns the counter's current value.
func (c *Counter) Value() int64 {
	c.eng.mu.Lock()
	defer c.eng.mu.Unlock()
	return c.val
}

// Add advances the counter by delta (must be non-negative) and releases any
// waiters whose thresholds are now met. Waiters are released in the order
// they started waiting, each as its own scheduled event, preserving the
// engine's one-runnable-process determinism.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("sim: negative Add on counter %s", c.name))
	}
	e := c.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noteLocked("ctr:" + c.name)
	c.val += delta
	c.releaseLocked()
}

// AddAt schedules the counter to advance by delta at virtual time at.
func (c *Counter) AddAt(at Time, delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("sim: negative AddAt on counter %s", c.name))
	}
	e := c.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if at < e.now {
		at = e.now
	}
	e.scheduleLabeledLocked(at, "ctr:"+c.name, func() {
		e.noteLocked("ctr:" + c.name)
		c.val += delta
		c.releaseLocked()
	})
}

// SetAtLeast raises the counter to at least v (it never decreases).
func (c *Counter) SetAtLeast(v int64) {
	e := c.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noteLocked("ctr:" + c.name)
	if v > c.val {
		c.val = v
		c.releaseLocked()
	}
}

// releaseLocked schedules a wake event for every satisfied waiter. Caller
// holds the engine lock. Each waiter wakes via its own event so that at
// most one simulated process is runnable at a time.
func (c *Counter) releaseLocked() {
	e := c.eng
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.released && c.val >= w.threshold {
			w.released = true
			w := w
			e.scheduleLabeledLocked(e.now, "proc:"+w.p.name, func() { e.wakeLocked(w.p) })
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// WaitGE blocks the calling process until the counter's value is at least
// threshold. If it already is, WaitGE returns immediately without yielding.
func (c *Counter) WaitGE(p *Proc, threshold int64) {
	e := c.eng
	if p.eng != e {
		panic("sim: WaitGE across engines")
	}
	e.mu.Lock()
	e.noteLocked("ctr:" + c.name)
	if c.val >= threshold {
		e.mu.Unlock()
		return
	}
	c.waiters = append(c.waiters, &counterWaiter{p: p, threshold: threshold})
	e.block(p, fmt.Sprintf("waiting for counter %s >= %d (now %d)", c.name, threshold, c.val))
}
