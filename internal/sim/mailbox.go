package sim

import "fmt"

// A Mailbox is an in-order message queue with virtual-time delivery: items
// deposited with PutAt become visible at their arrival time, and consumers
// block in Get until an item matching their predicate arrives. The mini-MPI
// runtime builds tag matching and unexpected-message queues on top of one
// mailbox per destination rank.
type Mailbox struct {
	eng     *Engine
	name    string
	owner   string // attribution label for teardown audits ("" = unowned)
	items   []mailItem
	waiters []*mailWaiter
	arrived int64 // total items ever deposited
}

type mailItem struct {
	at Time
	v  interface{}
}

type mailWaiter struct {
	p     *Proc
	match func(interface{}) bool
	got   interface{}
	found bool
}

// NewMailbox creates a named mailbox bound to the engine.
func (e *Engine) NewMailbox(name string) *Mailbox {
	m := &Mailbox{eng: e, name: name}
	e.mu.Lock()
	e.mailboxes = append(e.mailboxes, m)
	e.mu.Unlock()
	return m
}

// PutAt deposits v into the mailbox at virtual time at (clamped to now).
// The caller does not block; delivery happens via a scheduled event so the
// depositor can keep computing while the message is "on the wire".
func (m *Mailbox) PutAt(at Time, v interface{}) {
	e := m.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if at < e.now {
		at = e.now
	}
	e.scheduleLabeledLocked(at, "mbox:"+m.name, func() { m.depositLocked(v) })
}

// depositLocked runs as an event at the arrival time: hand the item to the
// first waiting matcher (FIFO) or queue it. Caller holds the engine lock;
// at most one process is woken, preserving determinism.
func (m *Mailbox) depositLocked(v interface{}) {
	m.eng.noteLocked("mbox:" + m.name)
	m.arrived++
	for _, w := range m.waiters {
		if !w.found && w.match(v) {
			w.found = true
			w.got = v
			m.removeWaiterLocked(w)
			m.eng.wakeLocked(w.p)
			return
		}
	}
	m.items = append(m.items, mailItem{at: m.eng.now, v: v})
}

func (m *Mailbox) removeWaiterLocked(target *mailWaiter) {
	for i, w := range m.waiters {
		if w == target {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// Get blocks the calling process until an item matching match is available,
// removes it from the mailbox, and returns it. Items are matched in arrival
// order. The returned time is the item's arrival time (<= now).
func (m *Mailbox) Get(p *Proc, what string, match func(interface{}) bool) interface{} {
	e := m.eng
	if p.eng != e {
		panic("sim: Get across engines")
	}
	e.mu.Lock()
	e.noteLocked("mbox:" + m.name)
	for i, it := range m.items {
		if match(it.v) {
			m.items = append(m.items[:i], m.items[i+1:]...)
			e.mu.Unlock()
			return it.v
		}
	}
	w := &mailWaiter{p: p, match: match}
	m.waiters = append(m.waiters, w)
	e.block(p, fmt.Sprintf("receiving %s from mailbox %s", what, m.name))
	return w.got
}

// TryGet removes and returns the first queued item matching match without
// blocking. It returns nil, false when nothing matches.
func (m *Mailbox) TryGet(match func(interface{}) bool) (interface{}, bool) {
	m.eng.mu.Lock()
	defer m.eng.mu.Unlock()
	m.eng.noteLocked("mbox:" + m.name)
	for i, it := range m.items {
		if match(it.v) {
			m.items = append(m.items[:i], m.items[i+1:]...)
			return it.v, true
		}
	}
	return nil, false
}

// Pending reports how many delivered-but-unclaimed items are queued.
func (m *Mailbox) Pending() int {
	m.eng.mu.Lock()
	defer m.eng.mu.Unlock()
	return len(m.items)
}

// PendingItems returns the delivered-but-unclaimed items in arrival order.
// Teardown audits use it to attribute leaked messages to their senders.
func (m *Mailbox) PendingItems() []interface{} {
	m.eng.mu.Lock()
	defer m.eng.mu.Unlock()
	out := make([]interface{}, len(m.items))
	for i, it := range m.items {
		out[i] = it.v
	}
	return out
}

// SetOwner labels the mailbox with the party responsible for draining it
// (a rank, a job, a scheduler). Quiescence audits report the label when
// the mailbox leaks, so concurrent owners stay distinguishable.
func (m *Mailbox) SetOwner(label string) {
	m.eng.mu.Lock()
	defer m.eng.mu.Unlock()
	m.owner = label
}

// Owner returns the attribution label set with SetOwner ("" = unowned).
func (m *Mailbox) Owner() string {
	m.eng.mu.Lock()
	defer m.eng.mu.Unlock()
	return m.owner
}

// Arrived reports the total number of items ever delivered.
func (m *Mailbox) Arrived() int64 {
	m.eng.mu.Lock()
	defer m.eng.mu.Unlock()
	return m.arrived
}
