package sim

import (
	"fmt"
	"strings"
	"testing"
)

// constRate returns a profile that serves at frac forever.
func constRate(frac float64) RateFunc {
	return func(t Time) (float64, Time) { return frac, TimeMax }
}

func TestRateNilMatchesFullSpeed(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r")
	var end Time
	e.Spawn("p", func(p *Proc) {
		_, end = r.Acquire(10 * Microsecond)
		p.WaitUntil(end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(10*Microsecond) {
		t.Fatalf("end = %v, want exactly 10us (healthy path must be exact)", end)
	}
}

func TestRateHalfSpeedDoublesService(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r")
	r.SetRate(constRate(0.5))
	var end Time
	e.Spawn("p", func(p *Proc) {
		_, end = r.Acquire(10 * Microsecond)
		p.WaitUntil(end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(20*Microsecond) {
		t.Fatalf("end = %v, want 20us at half rate", end)
	}
}

func TestRateOutagePausesService(t *testing.T) {
	// Full speed until 5us, down [5us, 25us), full speed after: a 10us job
	// starting at 0 does 5us of work, pauses 20us, finishes at 30us.
	profile := func(t Time) (float64, Time) {
		switch {
		case t < Time(5*Microsecond):
			return 1, Time(5 * Microsecond)
		case t < Time(25*Microsecond):
			return 0, Time(25 * Microsecond)
		default:
			return 1, TimeMax
		}
	}
	e := NewEngine()
	r := e.NewResource("r")
	r.SetRate(profile)
	var end Time
	e.Spawn("p", func(p *Proc) {
		_, end = r.Acquire(10 * Microsecond)
		p.WaitUntil(end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(30*Microsecond) {
		t.Fatalf("end = %v, want 30us (5 work + 20 outage + 5 work)", end)
	}
	if got := r.BusyTime(); got != 30*Microsecond {
		t.Fatalf("busy = %v, want 30us (occupation spans the outage)", got)
	}
}

func TestRateAcquireDuringOutageWaits(t *testing.T) {
	// Down [0, 8us): a job posted at 0 cannot start serving until 8us.
	profile := func(t Time) (float64, Time) {
		if t < Time(8*Microsecond) {
			return 0, Time(8 * Microsecond)
		}
		return 1, TimeMax
	}
	e := NewEngine()
	r := e.NewResource("r")
	r.SetRate(profile)
	var end Time
	e.Spawn("p", func(p *Proc) {
		_, end = r.Acquire(2 * Microsecond)
		p.WaitUntil(end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(10*Microsecond) {
		t.Fatalf("end = %v, want 10us", end)
	}
}

func TestRatePermanentOutagePanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("deadrail")
	r.SetRate(constRate(0))
	e.Spawn("p", func(p *Proc) {
		r.Acquire(Microsecond)
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "permanently unavailable") {
		t.Fatalf("err = %v, want permanently-unavailable panic", err)
	}
}

func TestRateStalledWindowPanics(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r")
	r.SetRate(func(t Time) (float64, Time) { return 0.5, t }) // never advances
	e.Spawn("p", func(p *Proc) {
		r.Acquire(Microsecond)
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "does not advance") {
		t.Fatalf("err = %v, want stalled-window panic", err)
	}
}

func TestRateAcquireTogetherSlowestEndpointWins(t *testing.T) {
	// tx healthy, rx at half speed: delivery waits for the slow endpoint,
	// and both stay held until the common end.
	e := NewEngine()
	tx := e.NewResource("tx")
	rx := e.NewResource("rx")
	rx.SetRate(constRate(0.5))
	var end Time
	e.Spawn("p", func(p *Proc) {
		_, end = AcquireTogether(10*Microsecond, tx, rx)
		p.WaitUntil(end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(20*Microsecond) {
		t.Fatalf("end = %v, want 20us (rx at half rate)", end)
	}
	if tx.FreeAt() != end || rx.FreeAt() != end {
		t.Fatalf("endpoints released at %v/%v, want both held until %v", tx.FreeAt(), rx.FreeAt(), end)
	}
}

func TestGaugeNegativePanics(t *testing.T) {
	e := NewEngine()
	g := e.NewGauge("g")
	e.Spawn("p", func(p *Proc) {
		g.DecAt(p.Now()) // decrement without a matching Inc
		p.Sleep(Microsecond)
	})
	// The decrement fires on the scheduler goroutine inside Run, so the
	// panic surfaces there rather than in the process.
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "went negative") {
			t.Fatalf("recover = %v, want gauge-went-negative panic", r)
		}
	}()
	_ = e.Run()
	t.Fatal("Run returned without panicking")
}
