package sim

import "fmt"

// A Resource is a FIFO-serialized server in virtual time: a network rail,
// a DMA engine, a memory bus. A transfer occupies the resource for its
// duration; requests issued while the resource is busy queue behind it.
//
// Because the engine serializes process execution in virtual-time order,
// acquisitions always arrive with non-decreasing request times, which makes
// the single freeAt register an exact FIFO queue model.
type Resource struct {
	eng       *Engine
	name      string
	freeAt    Time
	busy      Duration // total occupied time, for utilization reporting
	uses      int64
	rate      RateFunc // nil: full speed forever
	lastOwner string   // who acquired it last ("" = never attributed)
}

// NewResource creates a named resource bound to the engine.
func (e *Engine) NewResource(name string) *Resource {
	r := &Resource{eng: e, name: name}
	e.mu.Lock()
	e.resources = append(e.resources, r)
	e.mu.Unlock()
	return r
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// A RateFunc is a piecewise-constant service-rate profile: at virtual time
// t the resource serves at `fraction` of its nominal speed (0 means
// unavailable — service pauses) and that fraction holds until `until`
// (exclusive; TimeMax or later means forever). The function must be pure:
// identical t must always yield identical results, or determinism breaks.
type RateFunc func(t Time) (fraction float64, until Time)

// SetRate attaches a service-rate profile to the resource; nil restores
// full speed. It is how fault schedules impose downtime windows and
// degraded-bandwidth spans: an occupation of nominal duration d stretches
// to cover d worth of work at the profile's varying rate, pausing entirely
// through unavailability windows.
func (r *Resource) SetRate(fn RateFunc) {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	r.rate = fn
}

// serviceEndLocked returns when an occupation of nominal duration d that
// begins at start completes under the resource's rate profile. Caller
// holds the engine lock.
func (r *Resource) serviceEndLocked(start Time, d Duration) Time {
	if r.rate == nil || d == 0 {
		return start + Time(d)
	}
	remaining := float64(d)
	t := start
	for {
		frac, until := r.rate(t)
		if until <= t {
			panic(fmt.Sprintf("sim: rate window on %s does not advance past %v", r.name, t))
		}
		if frac <= 0 {
			if until >= TimeMax {
				panic(fmt.Sprintf("sim: resource %s is permanently unavailable at %v", r.name, t))
			}
			t = until // outage: service pauses until the window ends
			continue
		}
		need := remaining / frac // wall time to finish at this rate
		if span := float64(until - t); need > span && until < TimeMax {
			remaining -= span * frac
			t = until
			continue
		}
		return t + Time(need+0.5)
	}
}

// Acquire occupies the resource for d starting no earlier than the current
// virtual time, queuing behind any in-flight use. It returns the start and
// end times of the occupation. Acquire does not block the caller; callers
// that must wait for completion follow with p.WaitUntil(end).
func (r *Resource) Acquire(d Duration) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative acquire on %s", r.name))
	}
	e := r.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noteLocked("res:" + r.name)
	start = e.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = r.serviceEndLocked(start, d)
	r.freeAt = end
	r.busy += Duration(end - start)
	r.uses++
	return start, end
}

// AcquireAfter is Acquire but the occupation cannot begin before notBefore.
// It models a pipeline stage that consumes the output of an earlier stage.
func (r *Resource) AcquireAfter(notBefore Time, d Duration) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative acquire on %s", r.name))
	}
	e := r.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noteLocked("res:" + r.name)
	start = e.now
	if notBefore > start {
		start = notBefore
	}
	if r.freeAt > start {
		start = r.freeAt
	}
	end = r.serviceEndLocked(start, d)
	r.freeAt = end
	r.busy += Duration(end - start)
	r.uses++
	return start, end
}

// AcquireTogether occupies every resource in rs for d simultaneously: the
// occupation starts when the last of them becomes free, and all of them are
// then busy until start+d. This models a transfer that needs both endpoints
// (e.g. the sender's HCA transmit engine and the receiver's receive engine).
func AcquireTogether(d Duration, rs ...*Resource) (start, end Time) {
	if len(rs) == 0 {
		panic("sim: AcquireTogether with no resources")
	}
	if d < 0 {
		panic("sim: negative acquire")
	}
	e := rs[0].eng
	e.mu.Lock()
	defer e.mu.Unlock()
	start = e.now
	for _, r := range rs {
		if r.eng != e {
			panic("sim: AcquireTogether across engines")
		}
		e.noteLocked("res:" + r.name)
		if r.freeAt > start {
			start = r.freeAt
		}
	}
	// The transfer is delivered only when the slowest endpoint finishes
	// its share of work; every endpoint stays held until then.
	end = start + Time(d)
	for _, r := range rs {
		if e2 := r.serviceEndLocked(start, d); e2 > end {
			end = e2
		}
	}
	for _, r := range rs {
		r.freeAt = end
		r.busy += Duration(end - start)
		r.uses++
	}
	return start, end
}

// AcquireHetero occupies several resources simultaneously with per-
// resource durations: the occupation starts when the last one becomes
// free; resource i is then busy for ds[i]. It returns the common start
// and the latest end. This models a transfer that holds pipeline stages
// of different speeds at once (e.g. a NIC at line rate and a shared
// switch uplink at its aggregate rate).
func AcquireHetero(ds []Duration, rs ...*Resource) (start, end Time) {
	if len(rs) == 0 || len(ds) != len(rs) {
		panic("sim: AcquireHetero needs one duration per resource")
	}
	e := rs[0].eng
	e.mu.Lock()
	defer e.mu.Unlock()
	start = e.now
	for _, r := range rs {
		if r.eng != e {
			panic("sim: AcquireHetero across engines")
		}
		e.noteLocked("res:" + r.name)
		if r.freeAt > start {
			start = r.freeAt
		}
	}
	for i, r := range rs {
		if ds[i] < 0 {
			panic("sim: negative acquire")
		}
		fin := r.serviceEndLocked(start, ds[i])
		r.freeAt = fin
		r.busy += Duration(fin - start)
		r.uses++
		if fin > end {
			end = fin
		}
	}
	return start, end
}

// MarkOwner records who is responsible for the resource's most recent
// acquisition. With several jobs contending for one rail, the quiescence
// audit uses the label to attribute a still-busy resource to a job
// instead of reporting an anonymous leak. An empty label is ignored.
func (r *Resource) MarkOwner(label string) {
	if label == "" {
		return
	}
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	r.lastOwner = label
}

// LastOwner returns the most recent MarkOwner label ("" = never marked).
func (r *Resource) LastOwner() string {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.lastOwner
}

// FreeAt reports when the resource next becomes idle. Mid-run callers
// (placement policies) make decisions from the value, so it counts
// toward the step footprint; BusyTime/Uses are post-run statistics and
// deliberately do not.
func (r *Resource) FreeAt() Time {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	r.eng.noteLocked("res:" + r.name)
	return r.freeAt
}

// BusyTime reports the cumulative occupied duration.
func (r *Resource) BusyTime() Duration {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.busy
}

// Uses reports how many acquisitions the resource has served.
func (r *Resource) Uses() int64 {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.uses
}

// A Gauge tracks how many operations of some class are concurrently in
// flight in virtual time; cost models use it to apply congestion factors
// (the paper's b and cg terms). Inc takes effect immediately; the matching
// decrement is scheduled for the operation's completion time.
type Gauge struct {
	eng  *Engine
	name string
	val  int
	peak int
}

// NewGauge creates a named gauge bound to the engine.
func (e *Engine) NewGauge(name string) *Gauge {
	return &Gauge{eng: e, name: name}
}

// Inc increments the gauge and returns the new value (the operation itself
// is included in its own concurrency count).
func (g *Gauge) Inc() int {
	e := g.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	e.noteLocked("gauge:" + g.name)
	g.val++
	if g.val > g.peak {
		g.peak = g.val
	}
	return g.val
}

// DecAt schedules the gauge to decrement at virtual time at.
func (g *Gauge) DecAt(at Time) {
	e := g.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if at < e.now {
		at = e.now
	}
	e.scheduleLabeledLocked(at, "gauge:"+g.name, func() {
		e.noteLocked("gauge:" + g.name)
		g.val--
		if g.val < 0 {
			panic(fmt.Sprintf("sim: gauge %s went negative", g.name))
		}
	})
}

// Value returns the current in-flight count.
func (g *Gauge) Value() int {
	g.eng.mu.Lock()
	defer g.eng.mu.Unlock()
	g.eng.noteLocked("gauge:" + g.name)
	return g.val
}

// Peak returns the maximum in-flight count observed.
func (g *Gauge) Peak() int {
	g.eng.mu.Lock()
	defer g.eng.mu.Unlock()
	return g.peak
}
