package sim

import "fmt"

// A Resource is a FIFO-serialized server in virtual time: a network rail,
// a DMA engine, a memory bus. A transfer occupies the resource for its
// duration; requests issued while the resource is busy queue behind it.
//
// Because the engine serializes process execution in virtual-time order,
// acquisitions always arrive with non-decreasing request times, which makes
// the single freeAt register an exact FIFO queue model.
type Resource struct {
	eng    *Engine
	name   string
	freeAt Time
	busy   Duration // total occupied time, for utilization reporting
	uses   int64
}

// NewResource creates a named resource bound to the engine.
func (e *Engine) NewResource(name string) *Resource {
	return &Resource{eng: e, name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire occupies the resource for d starting no earlier than the current
// virtual time, queuing behind any in-flight use. It returns the start and
// end times of the occupation. Acquire does not block the caller; callers
// that must wait for completion follow with p.WaitUntil(end).
func (r *Resource) Acquire(d Duration) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative acquire on %s", r.name))
	}
	e := r.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	start = e.now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + Time(d)
	r.freeAt = end
	r.busy += d
	r.uses++
	return start, end
}

// AcquireAfter is Acquire but the occupation cannot begin before notBefore.
// It models a pipeline stage that consumes the output of an earlier stage.
func (r *Resource) AcquireAfter(notBefore Time, d Duration) (start, end Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative acquire on %s", r.name))
	}
	e := r.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	start = e.now
	if notBefore > start {
		start = notBefore
	}
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + Time(d)
	r.freeAt = end
	r.busy += d
	r.uses++
	return start, end
}

// AcquireTogether occupies every resource in rs for d simultaneously: the
// occupation starts when the last of them becomes free, and all of them are
// then busy until start+d. This models a transfer that needs both endpoints
// (e.g. the sender's HCA transmit engine and the receiver's receive engine).
func AcquireTogether(d Duration, rs ...*Resource) (start, end Time) {
	if len(rs) == 0 {
		panic("sim: AcquireTogether with no resources")
	}
	if d < 0 {
		panic("sim: negative acquire")
	}
	e := rs[0].eng
	e.mu.Lock()
	defer e.mu.Unlock()
	start = e.now
	for _, r := range rs {
		if r.eng != e {
			panic("sim: AcquireTogether across engines")
		}
		if r.freeAt > start {
			start = r.freeAt
		}
	}
	end = start + Time(d)
	for _, r := range rs {
		r.freeAt = end
		r.busy += d
		r.uses++
	}
	return start, end
}

// AcquireHetero occupies several resources simultaneously with per-
// resource durations: the occupation starts when the last one becomes
// free; resource i is then busy for ds[i]. It returns the common start
// and the latest end. This models a transfer that holds pipeline stages
// of different speeds at once (e.g. a NIC at line rate and a shared
// switch uplink at its aggregate rate).
func AcquireHetero(ds []Duration, rs ...*Resource) (start, end Time) {
	if len(rs) == 0 || len(ds) != len(rs) {
		panic("sim: AcquireHetero needs one duration per resource")
	}
	e := rs[0].eng
	e.mu.Lock()
	defer e.mu.Unlock()
	start = e.now
	for _, r := range rs {
		if r.eng != e {
			panic("sim: AcquireHetero across engines")
		}
		if r.freeAt > start {
			start = r.freeAt
		}
	}
	for i, r := range rs {
		if ds[i] < 0 {
			panic("sim: negative acquire")
		}
		fin := start + Time(ds[i])
		r.freeAt = fin
		r.busy += ds[i]
		r.uses++
		if fin > end {
			end = fin
		}
	}
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.freeAt
}

// BusyTime reports the cumulative occupied duration.
func (r *Resource) BusyTime() Duration {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.busy
}

// Uses reports how many acquisitions the resource has served.
func (r *Resource) Uses() int64 {
	r.eng.mu.Lock()
	defer r.eng.mu.Unlock()
	return r.uses
}

// A Gauge tracks how many operations of some class are concurrently in
// flight in virtual time; cost models use it to apply congestion factors
// (the paper's b and cg terms). Inc takes effect immediately; the matching
// decrement is scheduled for the operation's completion time.
type Gauge struct {
	eng  *Engine
	name string
	val  int
	peak int
}

// NewGauge creates a named gauge bound to the engine.
func (e *Engine) NewGauge(name string) *Gauge {
	return &Gauge{eng: e, name: name}
}

// Inc increments the gauge and returns the new value (the operation itself
// is included in its own concurrency count).
func (g *Gauge) Inc() int {
	e := g.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	g.val++
	if g.val > g.peak {
		g.peak = g.val
	}
	return g.val
}

// DecAt schedules the gauge to decrement at virtual time at.
func (g *Gauge) DecAt(at Time) {
	e := g.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if at < e.now {
		at = e.now
	}
	e.scheduleLocked(at, func() {
		g.val--
		if g.val < 0 {
			panic(fmt.Sprintf("sim: gauge %s went negative", g.name))
		}
	})
}

// Value returns the current in-flight count.
func (g *Gauge) Value() int {
	g.eng.mu.Lock()
	defer g.eng.mu.Unlock()
	return g.val
}

// Peak returns the maximum in-flight count observed.
func (g *Gauge) Peak() int {
	g.eng.mu.Lock()
	defer g.eng.mu.Unlock()
	return g.peak
}
