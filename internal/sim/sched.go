package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// The scheduler seam.
//
// The engine's canonical order fires simultaneous events by ascending
// sequence number. That is one legal serialization of the frontier of
// co-enabled events, but any permutation of same-time events is equally
// legal under the simulation's semantics: virtual time cannot move
// backwards, so the ONLY nondeterminism a real system would exhibit that
// the canonical order hides is the ordering of events that share a fire
// time. A Scheduler makes that choice explicit and pluggable, which is
// what lets internal/explore enumerate the interleaving space.
//
// Contract: Pick is called with the engine lock held and the full
// frontier of minimum-time events, ordered by ascending sequence number
// (index 0 is the canonical choice). It must return an index into
// frontier without calling back into the engine, blocking, or retaining
// the slice past the call. Virtual time semantics (durations, resource
// queueing) are unaffected by the choice; only the serialization order
// of simultaneous events changes.

// EventInfo identifies one co-enabled event offered to a Scheduler.
type EventInfo struct {
	// Seq is the event's engine-wide schedule sequence number. Within one
	// run it is unique; across runs it is stable only while the executed
	// prefix is identical (replay determinism).
	Seq uint64
	// Label names what the event acts on: "proc:NAME" for a process
	// wake, "mbox:NAME" for a message arrival, "ctr:NAME" for a counter
	// advance, "gauge:NAME" for a gauge decrement, "ext" for events
	// scheduled through the public Schedule/After API.
	Label string
}

// A Scheduler chooses which of several co-enabled (same virtual time)
// events fires next. Returning 0 everywhere reproduces the engine's
// canonical order exactly.
type Scheduler interface {
	Pick(now Time, frontier []EventInfo) int
}

// StepInfo describes one executed step: the event that fired plus
// everything that ran before the engine quiesced again (the woken
// processes run until they all block). Schedulers that also implement
// StepObserver receive one StepInfo per step, in execution order.
type StepInfo struct {
	// Seq and Label identify the event that initiated the step.
	Seq   uint64
	Label string
	// At is the virtual time the step executed at.
	At Time
	// Footprint is the sorted set of shared-state keys the step touched:
	// "proc:NAME", "res:NAME", "mbox:NAME", "ctr:NAME", "gauge:NAME".
	// Two steps with disjoint footprints commute: executing them in
	// either order yields the same terminal state.
	Footprint []string
	// Spawned lists the sequence numbers of events scheduled during the
	// step, in creation order. They are causally after this step.
	Spawned []uint64
}

// A StepObserver receives the dependency footprint of every executed
// step. ObserveStep is called with the engine lock held and must not
// call back into the engine.
type StepObserver interface {
	ObserveStep(StepInfo)
}

// SetScheduler installs a scheduling strategy for simultaneous events.
// It must be called before Run; a nil Scheduler keeps the canonical
// order. If s also implements StepObserver the engine collects and
// reports per-step dependency footprints (off otherwise — the canonical
// path pays nothing for the seam).
func (e *Engine) SetScheduler(s Scheduler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("sim: SetScheduler after Run")
	}
	e.sched = s
	e.obs, e.collect = s.(StepObserver)
}

// nextEventLocked pops the event to fire next. With no scheduler (or a
// singleton frontier) it is exactly heap.Pop. Otherwise it pops the
// whole minimum-time frontier, asks the scheduler to choose, and pushes
// the rest back.
func (e *Engine) nextEventLocked() *event {
	ev := heap.Pop(&e.events).(*event)
	if e.sched == nil || e.events.Len() == 0 || e.events[0].at != ev.at {
		return ev
	}
	batch := []*event{ev}
	for e.events.Len() > 0 && e.events[0].at == ev.at {
		batch = append(batch, heap.Pop(&e.events).(*event))
	}
	frontier := make([]EventInfo, len(batch))
	for i, b := range batch {
		frontier[i] = EventInfo{Seq: b.seq, Label: b.label}
	}
	k := e.sched.Pick(ev.at, frontier)
	if k < 0 || k >= len(batch) {
		panic(fmt.Sprintf("sim: scheduler picked index %d of a %d-event frontier", k, len(batch)))
	}
	for i, b := range batch {
		if i != k {
			heap.Push(&e.events, b)
		}
	}
	return batch[k]
}

// beginStepLocked opens footprint collection for the step initiated by
// ev. No-op unless a StepObserver is installed.
func (e *Engine) beginStepLocked(ev *event) {
	if !e.collect {
		return
	}
	e.stepOpen = true
	e.stepSeq = ev.seq
	e.stepLabel = ev.label
	e.stepAt = ev.at
	e.foot = e.foot[:0]
	e.spawned = e.spawned[:0]
}

// flushStepLocked closes the open step, if any, and delivers its
// StepInfo to the observer. Called when the engine quiesces (all
// processes blocked again) before the next event is chosen.
func (e *Engine) flushStepLocked() {
	if !e.stepOpen {
		return
	}
	e.stepOpen = false
	fp := make([]string, len(e.foot))
	copy(fp, e.foot)
	sort.Strings(fp)
	var sp []uint64
	if len(e.spawned) > 0 {
		sp = make([]uint64, len(e.spawned))
		copy(sp, e.spawned)
	}
	e.obs.ObserveStep(StepInfo{Seq: e.stepSeq, Label: e.stepLabel, At: e.stepAt, Footprint: fp, Spawned: sp})
}

// noteLocked records that the current step touched the shared-state key.
// Footprints are tiny (a handful of keys per step), so a linear-scan
// dedup on a slice beats a map and keeps iteration order deterministic.
func (e *Engine) noteLocked(key string) {
	if !e.stepOpen {
		return
	}
	for _, k := range e.foot {
		if k == key {
			return
		}
	}
	e.foot = append(e.foot, key)
}
