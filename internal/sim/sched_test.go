package sim

import (
	"fmt"
	"strings"
	"testing"
)

// canonicalSched always picks index 0: the engine's own order.
type canonicalSched struct{}

func (canonicalSched) Pick(now Time, frontier []EventInfo) int { return 0 }

// lastSched always picks the highest-seq frontier member, maximally
// perturbing the canonical order.
type lastSched struct{ picks int }

func (s *lastSched) Pick(now Time, frontier []EventInfo) int {
	s.picks++
	return len(frontier) - 1
}

// recordingSched picks canonically and records every step footprint.
type recordingSched struct {
	frontiers [][]EventInfo
	steps     []StepInfo
}

func (s *recordingSched) Pick(now Time, frontier []EventInfo) int {
	cp := make([]EventInfo, len(frontier))
	copy(cp, frontier)
	s.frontiers = append(s.frontiers, cp)
	return 0
}

func (s *recordingSched) ObserveStep(info StepInfo) { s.steps = append(s.steps, info) }

// raceWorld builds a two-proc scenario where both processes wake at the
// same virtual time and append their name to order.
func raceWorld(order *[]string, sched Scheduler) *Engine {
	e := NewEngine()
	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Sleep(5 * Microsecond)
			*order = append(*order, name)
		})
	}
	if sched != nil {
		e.SetScheduler(sched)
	}
	return e
}

func TestSchedulerCanonicalPickMatchesDefault(t *testing.T) {
	var defOrder, canOrder []string
	if err := raceWorld(&defOrder, nil).Run(); err != nil {
		t.Fatal(err)
	}
	if err := raceWorld(&canOrder, canonicalSched{}).Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(defOrder) != fmt.Sprint(canOrder) {
		t.Fatalf("canonical scheduler diverged from default: %v vs %v", defOrder, canOrder)
	}
}

func TestSchedulerReordersSameTimeEvents(t *testing.T) {
	// Both start events are co-enabled at t=0; picking the last frontier
	// member must run proc b before proc a.
	var order []string
	e := NewEngine()
	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			order = append(order, name)
		})
	}
	s := &lastSched{}
	e.SetScheduler(s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[b a]" {
		t.Fatalf("pick-last scheduler should reverse same-time starts, got %v", order)
	}
	if s.picks == 0 {
		t.Fatal("scheduler was never consulted")
	}
}

func TestSchedulerSeesLabeledFrontier(t *testing.T) {
	var order []string
	s := &recordingSched{}
	if err := raceWorld(&order, s).Run(); err != nil {
		t.Fatal(err)
	}
	// Both the start events (t=0) and the wakes (t=5us) are two-element
	// frontiers labeled with the proc names.
	if len(s.frontiers) < 2 {
		t.Fatalf("expected at least 2 multi-event frontiers, got %d", len(s.frontiers))
	}
	for _, f := range s.frontiers {
		if len(f) != 2 || f[0].Label != "proc:a" || f[1].Label != "proc:b" {
			t.Fatalf("unexpected frontier %v", f)
		}
		if f[0].Seq >= f[1].Seq {
			t.Fatalf("frontier not in seq order: %v", f)
		}
	}
}

func TestStepObserverFootprints(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("rail0")
	m := e.NewMailbox("mb")
	e.Spawn("send", func(p *Proc) {
		_, end := r.Acquire(2 * Microsecond)
		m.PutAt(end, "hello")
		p.WaitUntil(end)
	})
	e.Spawn("recv", func(p *Proc) {
		m.Get(p, "msg", func(interface{}) bool { return true })
	})
	s := &recordingSched{}
	e.SetScheduler(s)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	joined := ""
	spawnedAny := false
	for _, st := range s.steps {
		joined += st.Label + "{" + strings.Join(st.Footprint, ",") + "} "
		if len(st.Spawned) > 0 {
			spawnedAny = true
		}
	}
	for _, want := range []string{"res:rail0", "mbox:mb", "proc:send", "proc:recv"} {
		if !strings.Contains(joined, want) {
			t.Errorf("no step footprint mentions %s: %s", want, joined)
		}
	}
	if !spawnedAny {
		t.Errorf("no step reported spawned events: %s", joined)
	}
	// The sender's start step acquires the rail and schedules the
	// deposit; the deposit step must carry the mailbox key and the woken
	// receiver's proc key together (that is the dependency DPOR keys on).
	foundDeposit := false
	for _, st := range s.steps {
		fp := strings.Join(st.Footprint, ",")
		if st.Label == "mbox:mb" && strings.Contains(fp, "mbox:mb") && strings.Contains(fp, "proc:recv") {
			foundDeposit = true
		}
	}
	if !foundDeposit {
		t.Errorf("deposit step footprint missing mailbox+receiver keys: %s", joined)
	}
}

func TestSetSchedulerAfterRunPanics(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetScheduler after Run did not panic")
		}
	}()
	e.SetScheduler(canonicalSched{})
}
