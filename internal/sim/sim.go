// Package sim implements a deterministic, conservative discrete-event
// simulation engine with virtual time.
//
// Simulated processes are ordinary goroutines spawned with Engine.Spawn.
// They interact with virtual time only through blocking primitives
// (Sleep, WaitUntil, Counter.WaitGE, ...). The engine serializes process
// execution: at any wall-clock instant at most one simulated process runs,
// and simultaneous events are ordered by a monotone sequence number, so a
// simulation produces bit-identical results on every run.
//
// The engine models a closed system: when every process is blocked, the
// earliest pending event fires and advances the clock. If every process is
// blocked and no events are pending, the simulation is deadlocked and Run
// returns an error describing what each process was waiting for.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// TimeMax is the "never" horizon used by open-ended rate windows
// (Resource.SetRate). It is far enough below the int64 ceiling that
// adding durations to it cannot overflow.
const TimeMax = Time(1) << 61

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Micros reports t as fractional microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Seconds reports t as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros reports d as fractional microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Seconds reports d as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

func (t Time) String() string     { return fmt.Sprintf("%.3fus", t.Micros()) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Micros()) }

// FromSeconds converts fractional seconds to a Duration, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Duration { return Duration(s*1e9 + 0.5) }

// FromMicros converts fractional microseconds to a Duration.
func FromMicros(us float64) Duration { return Duration(us*1e3 + 0.5) }

// TransferTime is the classic alpha-beta cost: the time to move n bytes at
// bw bytes/second after a fixed startup cost alpha.
func TransferTime(alpha Duration, n int, bw float64) Duration {
	if bw <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return alpha + FromSeconds(float64(n)/bw)
}

// An event is a scheduled callback. Events with equal fire times execute in
// the order they were scheduled (seq) unless a Scheduler (sched.go) picks
// a different serialization of the same-time frontier.
type event struct {
	at    Time
	seq   uint64
	label string // what the event acts on, for Scheduler frontiers
	fire  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation. The zero value is not usable; call
// NewEngine.
type Engine struct {
	mu      sync.Mutex
	quiesce *sync.Cond

	now      Time
	seq      uint64
	events   eventHeap
	procs    []*Proc
	runnable int
	finished int
	started  bool
	failure  error
	fired    int64 // events executed, for Stats

	// Verification hooks (see check.go): every resource and mailbox ever
	// created on the engine, an optional observer of clock advances, and
	// an optional renderer for leaked mailbox items.
	resources []*Resource
	mailboxes []*Mailbox
	watcher   ClockWatcher
	describe  func(interface{}) string

	// Scheduler seam (see sched.go): an optional strategy for ordering
	// same-time events, and per-step footprint collection state used when
	// the strategy also observes steps.
	sched     Scheduler
	obs       StepObserver
	collect   bool
	stepOpen  bool
	stepSeq   uint64
	stepLabel string
	stepAt    Time
	foot      []string
	spawned   []uint64
}

// NewEngine returns an empty simulation.
func NewEngine() *Engine {
	e := &Engine{}
	e.quiesce = sync.NewCond(&e.mu)
	return e
}

// Now returns the current virtual time. It is safe to call from simulated
// processes and from event callbacks.
func (e *Engine) Now() Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Proc is a simulated process. Its methods must only be called from the
// goroutine running the process body.
type Proc struct {
	eng   *Engine
	id    int
	name  string
	fn    func(*Proc)
	wake  chan struct{}
	state string // what the proc is blocked on, for diagnostics
	done  bool
}

// ID returns the process's spawn index (0-based).
func (p *Proc) ID() int { return p.id }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Spawn registers a process to run when Engine.Run is called. fn runs in its
// own goroutine; it must interact with virtual time only through p's
// methods and sim types bound to the same engine.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		eng:   e,
		id:    len(e.procs),
		name:  name,
		fn:    fn,
		wake:  make(chan struct{}, 1),
		state: "not started",
	}
	e.procs = append(e.procs, p)
	return p
}

// ErrDeadlock is wrapped by the error Run returns when every process is
// blocked with no pending events.
var ErrDeadlock = errors.New("sim: deadlock")

// Run executes the simulation until every process has returned. It returns
// a deadlock error (wrapping ErrDeadlock) if processes remain blocked with
// no pending events, or the panic value if a process panicked.
func (e *Engine) Run() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return errors.New("sim: Run called twice")
	}
	e.started = true

	// Launch every process goroutine; each blocks on its wake channel
	// until its start event fires, serializing startup deterministically.
	for _, p := range e.procs {
		p := p
		//lint:ignore gonosim engine-owned worker goroutine: runProc is the primitive behind Spawn, and the start event below serializes it deterministically
		go e.runProc(p)
		e.scheduleLabeledLocked(e.now, "proc:"+p.name, func() { e.wakeLocked(p) })
	}

	for {
		for e.runnable > 0 && e.failure == nil {
			e.quiesce.Wait()
		}
		e.flushStepLocked() // the previous step is complete: report it
		if e.failure != nil {
			return e.failure
		}
		if e.finished == len(e.procs) && e.events.Len() == 0 {
			return nil
		}
		if e.events.Len() == 0 {
			return e.deadlockErrorLocked()
		}
		ev := e.nextEventLocked()
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", ev.at, e.now))
		}
		if e.watcher != nil && ev.at > e.now {
			e.watcher(e.now, ev.at)
		}
		e.beginStepLocked(ev)
		e.now = ev.at
		e.fired++
		ev.fire() // runs with e.mu held; may wake at most a bounded set of procs
	}
}

// Stats reports the engine's execution counters.
type Stats struct {
	// Events is the number of events executed so far.
	Events int64
	// Processes is the number of spawned processes; Finished of them have
	// returned.
	Processes, Finished int
	// Now is the current virtual time.
	Now Time
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Events:    e.fired,
		Processes: len(e.procs),
		Finished:  e.finished,
		Now:       e.now,
	}
}

func (e *Engine) runProc(p *Proc) {
	defer func() {
		e.mu.Lock()
		if r := recover(); r != nil {
			if e.failure == nil {
				e.failure = fmt.Errorf("sim: process %q (id %d) panicked: %v\n%s",
					p.name, p.id, r, debug.Stack())
			}
		}
		p.done = true
		p.state = "finished"
		e.finished++
		e.runnable--
		if e.runnable == 0 {
			e.quiesce.Signal()
		}
		e.mu.Unlock()
	}()
	<-p.wake // start event; Run pre-counted us as runnable via wakeLocked
	p.fn(p)
}

// scheduleLocked enqueues fire to run at time at. Caller holds e.mu.
// Events scheduled through this untyped path carry the conservative
// "ext" label (a Scheduler must assume they touch anything).
func (e *Engine) scheduleLocked(at Time, fire func()) {
	e.scheduleLabeledLocked(at, "ext", fire)
}

// scheduleLabeledLocked enqueues fire with an explicit frontier label.
// Caller holds e.mu. When a step is open the new event is recorded as
// spawned by it, establishing the causal edge DPOR needs.
func (e *Engine) scheduleLabeledLocked(at Time, label string, fire func()) {
	e.seq++
	if e.stepOpen {
		e.spawned = append(e.spawned, e.seq)
	}
	heap.Push(&e.events, &event{at: at, seq: e.seq, label: label, fire: fire})
}

// Schedule enqueues fire to run at virtual time at (>= now). fire executes
// on the scheduler goroutine with the engine lock held; it must not block
// and may only call *Locked engine helpers or wake processes via counters.
func (e *Engine) Schedule(at Time, fire func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if at < e.now {
		at = e.now
	}
	e.scheduleLocked(at, fire)
}

// After enqueues fire to run d from now.
func (e *Engine) After(d Duration, fire func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	at := e.now + Time(d)
	e.scheduleLocked(at, fire)
}

// wakeLocked marks p runnable and releases it. Caller holds e.mu. The wake
// channel is buffered so this never blocks.
func (e *Engine) wakeLocked(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	// A woken process runs inside the current step, so everything its
	// rank-local state does is attributed to the step via its proc key.
	e.noteLocked("proc:" + p.name)
	e.runnable++
	p.state = "running"
	p.wake <- struct{}{}
}

// block parks the calling process until something wakes it. Caller holds
// e.mu; block returns with e.mu released.
func (e *Engine) block(p *Proc, state string) {
	p.state = state
	e.runnable--
	if e.runnable == 0 {
		e.quiesce.Signal()
	}
	e.mu.Unlock()
	<-p.wake
}

// WaitUntil blocks the process until virtual time t. If t is not after the
// current time it returns immediately without yielding.
func (p *Proc) WaitUntil(t Time) {
	e := p.eng
	e.mu.Lock()
	if t <= e.now {
		e.mu.Unlock()
		return
	}
	e.scheduleLabeledLocked(t, "proc:"+p.name, func() { e.wakeLocked(p) })
	e.block(p, fmt.Sprintf("sleeping until %v", t))
}

// Sleep blocks the process for a span of virtual time. Sleep models local
// work (compute, memory copies whose cost was computed up front).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	e := p.eng
	e.mu.Lock()
	e.scheduleLabeledLocked(e.now+Time(d), "proc:"+p.name, func() { e.wakeLocked(p) })
	e.block(p, fmt.Sprintf("sleeping %v", d))
}

// Yield reschedules the process behind every event already pending at the
// current time, providing a deterministic interleaving point.
func (p *Proc) Yield() {
	e := p.eng
	e.mu.Lock()
	e.scheduleLabeledLocked(e.now, "proc:"+p.name, func() { e.wakeLocked(p) })
	e.block(p, "yielding")
}

func (e *Engine) deadlockErrorLocked() error {
	var b strings.Builder
	fmt.Fprintf(&b, "at t=%v: %d of %d processes blocked forever:\n",
		e.now, len(e.procs)-e.finished, len(e.procs))
	blocked := make([]*Proc, 0, len(e.procs))
	for _, p := range e.procs {
		if !p.done {
			blocked = append(blocked, p)
		}
	}
	sort.Slice(blocked, func(i, j int) bool { return blocked[i].id < blocked[j].id })
	for _, p := range blocked {
		fmt.Fprintf(&b, "  %s: %s\n", p.name, p.state)
	}
	return fmt.Errorf("%w %s", ErrDeadlock, b.String())
}
