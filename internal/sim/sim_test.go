package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(7 * Microsecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(12 * Microsecond); end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestWaitUntilPastReturnsImmediately(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		p.WaitUntil(3 * Time(Microsecond)) // in the past: no-op
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(10*Microsecond) {
		t.Fatalf("now = %v, want 10us", at)
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	// All procs sleep until the same instant; wake order must follow the
	// deterministic schedule order (here: spawn order, since start events
	// and sleep events are created in spawn order).
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time100us())
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func time100us() Duration { return 100 * Microsecond }

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		e := NewEngine()
		log := ""
		c := e.NewCounter("c")
		r := e.NewResource("r")
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Duration(i) * Microsecond)
				_, end := r.Acquire(10 * Microsecond)
				p.WaitUntil(end)
				c.Add(1)
				c.WaitGE(p, 5)
				log += fmt.Sprintf("%d@%v;", i, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	c := e.NewCounter("never")
	e.Spawn("stuck", func(p *Proc) {
		c.WaitGE(p, 1)
	})
	err := e.Run()
	if err == nil || !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want error from panicking process")
	}
}

func TestResourceFIFOQueueing(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("rail")
	ends := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			_, end := r.Acquire(10 * Microsecond)
			p.WaitUntil(end)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Three 10us uses of one resource serialize: 10, 20, 30us.
	for i, want := range []Time{Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)} {
		if ends[i] != want {
			t.Fatalf("ends = %v, want 10/20/30us", ends)
		}
	}
	if got := r.BusyTime(); got != 30*Microsecond {
		t.Fatalf("busy = %v, want 30us", got)
	}
	if got := r.Uses(); got != 3 {
		t.Fatalf("uses = %d, want 3", got)
	}
}

func TestAcquireTogetherWaitsForAll(t *testing.T) {
	e := NewEngine()
	a := e.NewResource("a")
	b := e.NewResource("b")
	var start, end Time
	e.Spawn("holder", func(p *Proc) {
		// Occupy b until t=50us.
		_, e2 := b.Acquire(50 * Microsecond)
		p.WaitUntil(e2)
	})
	e.Spawn("joint", func(p *Proc) {
		p.Sleep(1 * Microsecond) // make sure holder acquired first
		start, end = AcquireTogether(10*Microsecond, a, b)
		p.WaitUntil(end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != Time(50*Microsecond) || end != Time(60*Microsecond) {
		t.Fatalf("joint acquisition [%v, %v], want [50us, 60us]", start, end)
	}
	if a.FreeAt() != end || b.FreeAt() != end {
		t.Fatal("both resources should be busy until the joint end")
	}
}

func TestAcquireAfter(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r")
	e.Spawn("p", func(p *Proc) {
		start, end := r.AcquireAfter(40*Time(Microsecond), 5*Microsecond)
		if start != Time(40*Microsecond) || end != Time(45*Microsecond) {
			t.Errorf("AcquireAfter = [%v, %v], want [40us, 45us]", start, end)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterWaitAndBroadcast(t *testing.T) {
	e := NewEngine()
	c := e.NewCounter("chunks")
	var wokenAt [4]Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("waiter%d", i), func(p *Proc) {
			c.WaitGE(p, int64(i+1))
			wokenAt[i] = p.Now()
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		c.Add(2) // releases waiters 0 and 1
		p.Sleep(10 * Microsecond)
		c.Add(1) // releases waiter 2
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt[0] != Time(10*Microsecond) || wokenAt[1] != Time(10*Microsecond) {
		t.Fatalf("waiters 0,1 woke at %v,%v want 10us", wokenAt[0], wokenAt[1])
	}
	if wokenAt[2] != Time(20*Microsecond) {
		t.Fatalf("waiter 2 woke at %v, want 20us", wokenAt[2])
	}
}

func TestCounterAddAt(t *testing.T) {
	e := NewEngine()
	c := e.NewCounter("c")
	var at Time
	e.Spawn("producer", func(p *Proc) {
		c.AddAt(Time(30*Microsecond), 1) // delayed add; producer keeps going
	})
	e.Spawn("consumer", func(p *Proc) {
		c.WaitGE(p, 1)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(30*Microsecond) {
		t.Fatalf("consumer woke at %v, want 30us", at)
	}
}

func TestCounterSetAtLeastNeverDecreases(t *testing.T) {
	e := NewEngine()
	c := e.NewCounter("c")
	e.Spawn("p", func(p *Proc) {
		c.SetAtLeast(5)
		c.SetAtLeast(3)
		if got := c.Value(); got != 5 {
			t.Errorf("value = %d, want 5", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxDelayedDelivery(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("inbox")
	var got interface{}
	var at Time
	e.Spawn("sender", func(p *Proc) {
		m.PutAt(Time(25*Microsecond), "hello")
	})
	e.Spawn("receiver", func(p *Proc) {
		got = m.Get(p, "greeting", func(v interface{}) bool { return true })
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" || at != Time(25*Microsecond) {
		t.Fatalf("got %v at %v, want hello at 25us", got, at)
	}
}

func TestMailboxMatchingSkipsNonMatches(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("inbox")
	var got interface{}
	e.Spawn("sender", func(p *Proc) {
		m.PutAt(0, 1)
		m.PutAt(0, 2)
		m.PutAt(0, 3)
	})
	e.Spawn("receiver", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		got = m.Get(p, "two", func(v interface{}) bool { return v.(int) == 2 })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("got %v, want 2", got)
	}
	if m.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (items 1 and 3)", m.Pending())
	}
	if m.Arrived() != 3 {
		t.Fatalf("arrived = %d, want 3", m.Arrived())
	}
}

func TestMailboxWaiterFIFO(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("inbox")
	var order []string
	any := func(interface{}) bool { return true }
	e.Spawn("r1", func(p *Proc) {
		m.Get(p, "any", any)
		order = append(order, "r1")
	})
	e.Spawn("r2", func(p *Proc) {
		p.Sleep(1 * Microsecond)
		m.Get(p, "any", any)
		order = append(order, "r2")
	})
	e.Spawn("sender", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		m.PutAt(p.Now(), "a")
		m.PutAt(p.Now(), "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "r1" || order[1] != "r2" {
		t.Fatalf("order = %v, want [r1 r2]", order)
	}
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("inbox")
	e.Spawn("p", func(p *Proc) {
		if _, ok := m.TryGet(func(interface{}) bool { return true }); ok {
			t.Error("TryGet on empty mailbox should fail")
		}
		m.PutAt(p.Now(), 42)
		p.Sleep(1) // let the deposit event fire
		v, ok := m.TryGet(func(interface{}) bool { return true })
		if !ok || v != 42 {
			t.Errorf("TryGet = %v, %v; want 42, true", v, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGaugeConcurrency(t *testing.T) {
	e := NewEngine()
	g := e.NewGauge("copies")
	var seen []int
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			n := g.Inc()
			seen = append(seen, n)
			g.DecAt(p.Now() + Time(10*Microsecond))
			p.Sleep(20 * Microsecond)
			if got := g.Value(); got != 0 {
				t.Errorf("gauge after all decs = %d, want 0", got)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// All four start at t=0 and decrement at t=10us, so Inc returns 1..4.
	for i, n := range seen {
		if n != i+1 {
			t.Fatalf("seen = %v, want [1 2 3 4]", seen)
		}
	}
	if g.Peak() != 4 {
		t.Fatalf("peak = %d, want 4", g.Peak())
	}
}

func TestTransferTime(t *testing.T) {
	// 1 MiB at 1 GiB/s is ~976.5625us plus 2us startup.
	d := TransferTime(2*Microsecond, 1<<20, float64(1<<30))
	want := 2*Microsecond + FromSeconds(float64(1<<20)/float64(1<<30))
	if d != want {
		t.Fatalf("TransferTime = %v, want %v", d, want)
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Run should panic")
		}
	}()
	e.Spawn("late", func(p *Proc) {})
}

func TestScheduleAndAfterCallbacks(t *testing.T) {
	e := NewEngine()
	var fired atomic.Int32
	e.Spawn("p", func(p *Proc) {
		e.After(5*Microsecond, func() { fired.Add(1) })
		e.Schedule(Time(7*Microsecond), func() { fired.Add(1) })
		p.Sleep(10 * Microsecond)
		if got := fired.Load(); got != 2 {
			t.Errorf("fired = %d, want 2", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any set of sleep durations, each process ends exactly at the
// sum of its sleeps, independent of the other processes.
func TestQuickSleepIndependence(t *testing.T) {
	f := func(raw [][4]uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		e := NewEngine()
		ends := make([]Time, len(raw))
		for i, durs := range raw {
			i, durs := i, durs
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				var total Time
				for _, d := range durs {
					p.Sleep(Duration(d) * Nanosecond)
					total += Time(d)
				}
				ends[i] = p.Now()
				if ends[i] != total {
					t.Errorf("proc %d ended at %v, want %v", i, ends[i], total)
				}
			})
		}
		return e.Run() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource's total busy time equals the sum of acquired
// durations, and the final FreeAt is at least that sum when all requests
// are issued at t=0.
func TestQuickResourceConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		e := NewEngine()
		r := e.NewResource("r")
		var want Duration
		for _, d := range raw {
			want += Duration(d)
		}
		e.Spawn("p", func(p *Proc) {
			for _, d := range raw {
				r.Acquire(Duration(d))
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return r.BusyTime() == want && r.FreeAt() == Time(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProcAccessorsAndYield(t *testing.T) {
	e := NewEngine()
	var order []string
	a := e.Spawn("alpha", func(p *Proc) {
		if p.ID() != 0 || p.Name() != "alpha" || p.Engine() != e {
			t.Error("proc accessors wrong")
		}
		p.Yield() // defer to beta's start event
		order = append(order, "alpha")
	})
	e.Spawn("beta", func(p *Proc) {
		order = append(order, "beta")
	})
	_ = a
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "beta" {
		t.Fatalf("yield did not defer: %v", order)
	}
}

func TestDurationConversions(t *testing.T) {
	if FromMicros(1.5) != 1500*Nanosecond {
		t.Fatal("FromMicros")
	}
	if d := FromSeconds(2); d.Seconds() != 2 {
		t.Fatal("Seconds round trip")
	}
	if Time(3*Second).Seconds() != 3 {
		t.Fatal("Time.Seconds")
	}
	if (2*Microsecond).String() == "" || Time(5).String() == "" {
		t.Fatal("String empty")
	}
}

func TestTransferTimePanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransferTime(0, 10, 0)
}

func TestResourceName(t *testing.T) {
	e := NewEngine()
	if e.NewResource("rail").Name() != "rail" {
		t.Fatal("resource name")
	}
}

func TestEngineStats(t *testing.T) {
	e := NewEngine()
	e.Spawn("a", func(p *Proc) { p.Sleep(Microsecond); p.Sleep(Microsecond) })
	e.Spawn("b", func(p *Proc) { p.Sleep(Microsecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	// 2 start events + 3 sleep wakes = 5 events.
	if s.Events != 5 {
		t.Fatalf("events = %d, want 5", s.Events)
	}
	if s.Processes != 2 || s.Finished != 2 {
		t.Fatalf("procs = %d/%d", s.Finished, s.Processes)
	}
	if s.Now != Time(2*Microsecond) {
		t.Fatalf("now = %v", s.Now)
	}
}
