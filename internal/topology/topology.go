// Package topology describes the simulated cluster: how many nodes, how
// many processes per node (PPN), how many HCAs (network rails) per node,
// and how MPI ranks map onto nodes.
//
// The default mapping is "block" (consecutive ranks fill a node before the
// next node starts), which is how the paper's experiments place ranks
// (e.g. "32 nodes, 32 PPN" = ranks 0..31 on node 0, 32..63 on node 1, ...).
package topology

import "fmt"

// Layout selects how ranks map to nodes.
type Layout int

const (
	// Block places ranks 0..L-1 on node 0, L..2L-1 on node 1, and so on.
	Block Layout = iota
	// Cyclic deals ranks round-robin across nodes: rank r is on node r % N.
	Cyclic
	// Custom places ranks according to the cluster's explicit Ranks table.
	Custom
)

func (l Layout) String() string {
	switch l {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Error is a typed topology-validation failure. Field names the Cluster
// field at fault so callers (and tests) can assert on the cause rather
// than on message text.
type Error struct {
	Field  string
	Reason string
}

func (e *Error) Error() string {
	return "topology: " + e.Field + ": " + e.Reason
}

func errf(field, format string, args ...any) *Error {
	return &Error{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Cluster is an immutable description of the simulated machine.
type Cluster struct {
	// Nodes is the number of compute nodes (the paper's N).
	Nodes int
	// PPN is the number of MPI processes per node (the paper's L).
	PPN int
	// HCAs is the number of network adapters per node (the paper's H).
	HCAs int
	// Layout is the rank-to-node mapping.
	Layout Layout
	// Sockets optionally records NUMA domains per node (the paper's future
	// work is a 3-level NUMA-aware design); 0 or 1 means flat memory.
	Sockets int
	// NodeHCAs optionally overrides the HCA count per node for
	// heterogeneous clusters (e.g. mixed 1-HCA/2-HCA nodes). When set it
	// must hold one entry per node, each in [1, HCAs]; HCAs stays the
	// cluster-wide maximum. Empty means every node has HCAs rails.
	NodeHCAs []int
	// RailBW optionally scales each rail's line rate for asymmetric-rail
	// nodes (1.0 = nominal). When set it must hold one positive entry per
	// rail (len == HCAs). Empty means all rails run at nominal bandwidth.
	RailBW []float64
	// Ranks is the explicit rank placement used by the Custom layout:
	// Ranks[node] lists the world ranks hosted by that node in local
	// order. It must be Nodes rows of PPN ranks forming a permutation of
	// 0..Size()-1. Ignored (and rejected) under other layouts.
	Ranks [][]int
}

// New returns a block-layout cluster and panics on invalid shapes. Use a
// composite literal when a different layout is needed.
func New(nodes, ppn, hcas int) Cluster {
	c := Cluster{Nodes: nodes, PPN: ppn, HCAs: hcas, Layout: Block}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Validate reports whether the cluster shape is usable. Failures are
// *Error values naming the field at fault.
func (c Cluster) Validate() error {
	if c.Nodes < 1 {
		return errf("Nodes", "need at least 1 node, have %d", c.Nodes)
	}
	if c.PPN < 1 {
		return errf("PPN", "need at least 1 process per node, have %d", c.PPN)
	}
	if c.HCAs < 1 {
		return errf("HCAs", "need at least 1 HCA per node, have %d", c.HCAs)
	}
	if c.Layout != Block && c.Layout != Cyclic && c.Layout != Custom {
		return errf("Layout", "unknown layout %v", c.Layout)
	}
	if c.Sockets < 0 {
		return errf("Sockets", "negative socket count %d", c.Sockets)
	}
	if c.Sockets > 1 && c.PPN%c.Sockets != 0 {
		return errf("Sockets", "PPN %d not divisible by %d sockets", c.PPN, c.Sockets)
	}
	if c.NodeHCAs != nil {
		if len(c.NodeHCAs) != c.Nodes {
			return errf("NodeHCAs", "have %d entries, need one per node (%d)", len(c.NodeHCAs), c.Nodes)
		}
		for n, h := range c.NodeHCAs {
			if h < 1 {
				return errf("NodeHCAs", "node %d has %d HCAs; a node without a usable rail cannot send (every entry must be in [1,%d])", n, h, c.HCAs)
			}
			if h > c.HCAs {
				return errf("NodeHCAs", "node %d has %d HCAs, above the cluster-wide maximum %d", n, h, c.HCAs)
			}
		}
	}
	if c.RailBW != nil {
		if len(c.RailBW) != c.HCAs {
			return errf("RailBW", "have %d entries, need one per rail (%d)", len(c.RailBW), c.HCAs)
		}
		for r, s := range c.RailBW {
			if !(s > 0) || s > 1024 {
				return errf("RailBW", "rail %d scale %v out of range (0,1024]", r, s)
			}
		}
	}
	if c.Layout == Custom {
		if len(c.Ranks) != c.Nodes {
			return errf("Ranks", "custom layout has %d node rows, need %d", len(c.Ranks), c.Nodes)
		}
		seen := make([]bool, c.Size())
		for n, row := range c.Ranks {
			if len(row) != c.PPN {
				return errf("Ranks", "node %d hosts %d ranks, need PPN (%d)", n, len(row), c.PPN)
			}
			for _, r := range row {
				if r < 0 || r >= c.Size() {
					return errf("Ranks", "node %d lists rank %d, outside [0,%d)", n, r, c.Size())
				}
				if seen[r] {
					return errf("Ranks", "rank %d placed twice; a layout must place every rank exactly once", r)
				}
				seen[r] = true
			}
		}
	} else if c.Ranks != nil {
		return errf("Ranks", "explicit placement requires the custom layout, have %v", c.Layout)
	}
	return nil
}

// HCAsOf returns the number of HCAs on a node, honoring any
// heterogeneous per-node override.
func (c Cluster) HCAsOf(node int) int {
	if node < 0 || node >= c.Nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, c.Nodes))
	}
	if c.NodeHCAs != nil {
		return c.NodeHCAs[node]
	}
	return c.HCAs
}

// RailScale returns the bandwidth scale of a rail (1.0 when RailBW is
// unset). Rails at or above a node's HCA count are simply never used;
// the scale table is indexed by cluster-wide rail id.
func (c Cluster) RailScale(rail int) float64 {
	if rail < 0 || rail >= c.HCAs {
		panic(fmt.Sprintf("topology: rail %d out of range [0,%d)", rail, c.HCAs))
	}
	if c.RailBW == nil {
		return 1
	}
	return c.RailBW[rail]
}

// Heterogeneous reports whether any node or rail deviates from the
// uniform shape (per-node HCA overrides or non-nominal rail scales).
func (c Cluster) Heterogeneous() bool {
	for _, h := range c.NodeHCAs {
		if h != c.HCAs {
			return true
		}
	}
	for _, s := range c.RailBW {
		if s != 1 {
			return true
		}
	}
	return false
}

// NumaSockets reports the effective socket count (at least 1).
func (c Cluster) NumaSockets() int {
	if c.Sockets < 1 {
		return 1
	}
	return c.Sockets
}

// SocketOf returns the NUMA socket hosting the given local rank index.
// Locals are split into contiguous, equal-sized socket groups.
func (c Cluster) SocketOf(local int) int {
	if local < 0 || local >= c.PPN {
		panic(fmt.Sprintf("topology: local %d out of range [0,%d)", local, c.PPN))
	}
	s := c.NumaSockets()
	if s == 1 {
		return 0
	}
	return local / (c.PPN / s)
}

// SocketLocals returns the local indices belonging to a socket.
func (c Cluster) SocketLocals(socket int) []int {
	s := c.NumaSockets()
	if socket < 0 || socket >= s {
		panic(fmt.Sprintf("topology: socket %d out of range [0,%d)", socket, s))
	}
	per := c.PPN / s
	out := make([]int, per)
	for i := range out {
		out[i] = socket*per + i
	}
	return out
}

// SameSocket reports whether two local indices share a NUMA socket.
func (c Cluster) SameSocket(localA, localB int) bool {
	return c.SocketOf(localA) == c.SocketOf(localB)
}

// Size returns the total number of ranks (N * L).
func (c Cluster) Size() int { return c.Nodes * c.PPN }

// NodeOf returns the node hosting rank r.
func (c Cluster) NodeOf(r int) int {
	c.checkRank(r)
	switch c.Layout {
	case Cyclic:
		return r % c.Nodes
	case Custom:
		n, _ := c.findRank(r)
		return n
	}
	return r / c.PPN
}

// LocalOf returns rank r's index within its node (0..PPN-1).
func (c Cluster) LocalOf(r int) int {
	c.checkRank(r)
	switch c.Layout {
	case Cyclic:
		return r / c.Nodes
	case Custom:
		_, l := c.findRank(r)
		return l
	}
	return r % c.PPN
}

// RankOf returns the rank at (node, local).
func (c Cluster) RankOf(node, local int) int {
	if node < 0 || node >= c.Nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, c.Nodes))
	}
	if local < 0 || local >= c.PPN {
		panic(fmt.Sprintf("topology: local %d out of range [0,%d)", local, c.PPN))
	}
	switch c.Layout {
	case Cyclic:
		return local*c.Nodes + node
	case Custom:
		return c.Ranks[node][local]
	}
	return node*c.PPN + local
}

// findRank locates a rank in the custom placement table. Custom layouts
// are small validation worlds, so a linear scan is fine.
func (c Cluster) findRank(r int) (node, local int) {
	for n, row := range c.Ranks {
		for l, rr := range row {
			if rr == r {
				return n, l
			}
		}
	}
	panic(fmt.Sprintf("topology: rank %d missing from custom placement", r))
}

// LeaderOf returns the designated leader rank of a node (local index 0).
func (c Cluster) LeaderOf(node int) int { return c.RankOf(node, 0) }

// IsLeader reports whether rank r is its node's leader.
func (c Cluster) IsLeader(r int) bool { return c.LocalOf(r) == 0 }

// SameNode reports whether two ranks share a node.
func (c Cluster) SameNode(a, b int) bool { return c.NodeOf(a) == c.NodeOf(b) }

// NodeRanks returns the ranks on a node in local order.
func (c Cluster) NodeRanks(node int) []int {
	out := make([]int, c.PPN)
	for l := 0; l < c.PPN; l++ {
		out[l] = c.RankOf(node, l)
	}
	return out
}

// Leaders returns the leader rank of every node in node order.
func (c Cluster) Leaders() []int {
	out := make([]int, c.Nodes)
	for n := 0; n < c.Nodes; n++ {
		out[n] = c.LeaderOf(n)
	}
	return out
}

// Equal reports whether two cluster descriptions are identical,
// including heterogeneous overrides and custom placements. (Cluster
// holds slices, so it is not comparable with ==.)
func (c Cluster) Equal(o Cluster) bool {
	if c.Nodes != o.Nodes || c.PPN != o.PPN || c.HCAs != o.HCAs ||
		c.Layout != o.Layout || c.Sockets != o.Sockets {
		return false
	}
	if len(c.NodeHCAs) != len(o.NodeHCAs) || len(c.RailBW) != len(o.RailBW) || len(c.Ranks) != len(o.Ranks) {
		return false
	}
	for i, h := range c.NodeHCAs {
		if o.NodeHCAs[i] != h {
			return false
		}
	}
	for i, s := range c.RailBW {
		if o.RailBW[i] != s {
			return false
		}
	}
	for i, row := range c.Ranks {
		if len(o.Ranks[i]) != len(row) {
			return false
		}
		for j, r := range row {
			if o.Ranks[i][j] != r {
				return false
			}
		}
	}
	return true
}

func (c Cluster) checkRank(r int) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", r, c.Size()))
	}
}

func (c Cluster) String() string {
	return fmt.Sprintf("%d nodes x %d ppn x %d HCAs (%s)", c.Nodes, c.PPN, c.HCAs, c.Layout)
}
