// Package topology describes the simulated cluster: how many nodes, how
// many processes per node (PPN), how many HCAs (network rails) per node,
// and how MPI ranks map onto nodes.
//
// The default mapping is "block" (consecutive ranks fill a node before the
// next node starts), which is how the paper's experiments place ranks
// (e.g. "32 nodes, 32 PPN" = ranks 0..31 on node 0, 32..63 on node 1, ...).
package topology

import "fmt"

// Layout selects how ranks map to nodes.
type Layout int

const (
	// Block places ranks 0..L-1 on node 0, L..2L-1 on node 1, and so on.
	Block Layout = iota
	// Cyclic deals ranks round-robin across nodes: rank r is on node r % N.
	Cyclic
)

func (l Layout) String() string {
	switch l {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Cluster is an immutable description of the simulated machine.
type Cluster struct {
	// Nodes is the number of compute nodes (the paper's N).
	Nodes int
	// PPN is the number of MPI processes per node (the paper's L).
	PPN int
	// HCAs is the number of network adapters per node (the paper's H).
	HCAs int
	// Layout is the rank-to-node mapping.
	Layout Layout
	// Sockets optionally records NUMA domains per node (the paper's future
	// work is a 3-level NUMA-aware design); 0 or 1 means flat memory.
	Sockets int
}

// New returns a block-layout cluster and panics on invalid shapes. Use a
// composite literal when a different layout is needed.
func New(nodes, ppn, hcas int) Cluster {
	c := Cluster{Nodes: nodes, PPN: ppn, HCAs: hcas, Layout: Block}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

// Validate reports whether the cluster shape is usable.
func (c Cluster) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("topology: need at least 1 node, have %d", c.Nodes)
	}
	if c.PPN < 1 {
		return fmt.Errorf("topology: need at least 1 process per node, have %d", c.PPN)
	}
	if c.HCAs < 1 {
		return fmt.Errorf("topology: need at least 1 HCA per node, have %d", c.HCAs)
	}
	if c.Layout != Block && c.Layout != Cyclic {
		return fmt.Errorf("topology: unknown layout %v", c.Layout)
	}
	if c.Sockets < 0 {
		return fmt.Errorf("topology: negative socket count %d", c.Sockets)
	}
	if c.Sockets > 1 && c.PPN%c.Sockets != 0 {
		return fmt.Errorf("topology: PPN %d not divisible by %d sockets", c.PPN, c.Sockets)
	}
	return nil
}

// NumaSockets reports the effective socket count (at least 1).
func (c Cluster) NumaSockets() int {
	if c.Sockets < 1 {
		return 1
	}
	return c.Sockets
}

// SocketOf returns the NUMA socket hosting the given local rank index.
// Locals are split into contiguous, equal-sized socket groups.
func (c Cluster) SocketOf(local int) int {
	if local < 0 || local >= c.PPN {
		panic(fmt.Sprintf("topology: local %d out of range [0,%d)", local, c.PPN))
	}
	s := c.NumaSockets()
	if s == 1 {
		return 0
	}
	return local / (c.PPN / s)
}

// SocketLocals returns the local indices belonging to a socket.
func (c Cluster) SocketLocals(socket int) []int {
	s := c.NumaSockets()
	if socket < 0 || socket >= s {
		panic(fmt.Sprintf("topology: socket %d out of range [0,%d)", socket, s))
	}
	per := c.PPN / s
	out := make([]int, per)
	for i := range out {
		out[i] = socket*per + i
	}
	return out
}

// SameSocket reports whether two local indices share a NUMA socket.
func (c Cluster) SameSocket(localA, localB int) bool {
	return c.SocketOf(localA) == c.SocketOf(localB)
}

// Size returns the total number of ranks (N * L).
func (c Cluster) Size() int { return c.Nodes * c.PPN }

// NodeOf returns the node hosting rank r.
func (c Cluster) NodeOf(r int) int {
	c.checkRank(r)
	if c.Layout == Cyclic {
		return r % c.Nodes
	}
	return r / c.PPN
}

// LocalOf returns rank r's index within its node (0..PPN-1).
func (c Cluster) LocalOf(r int) int {
	c.checkRank(r)
	if c.Layout == Cyclic {
		return r / c.Nodes
	}
	return r % c.PPN
}

// RankOf returns the rank at (node, local).
func (c Cluster) RankOf(node, local int) int {
	if node < 0 || node >= c.Nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, c.Nodes))
	}
	if local < 0 || local >= c.PPN {
		panic(fmt.Sprintf("topology: local %d out of range [0,%d)", local, c.PPN))
	}
	if c.Layout == Cyclic {
		return local*c.Nodes + node
	}
	return node*c.PPN + local
}

// LeaderOf returns the designated leader rank of a node (local index 0).
func (c Cluster) LeaderOf(node int) int { return c.RankOf(node, 0) }

// IsLeader reports whether rank r is its node's leader.
func (c Cluster) IsLeader(r int) bool { return c.LocalOf(r) == 0 }

// SameNode reports whether two ranks share a node.
func (c Cluster) SameNode(a, b int) bool { return c.NodeOf(a) == c.NodeOf(b) }

// NodeRanks returns the ranks on a node in local order.
func (c Cluster) NodeRanks(node int) []int {
	out := make([]int, c.PPN)
	for l := 0; l < c.PPN; l++ {
		out[l] = c.RankOf(node, l)
	}
	return out
}

// Leaders returns the leader rank of every node in node order.
func (c Cluster) Leaders() []int {
	out := make([]int, c.Nodes)
	for n := 0; n < c.Nodes; n++ {
		out[n] = c.LeaderOf(n)
	}
	return out
}

func (c Cluster) checkRank(r int) {
	if r < 0 || r >= c.Size() {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", r, c.Size()))
	}
}

func (c Cluster) String() string {
	return fmt.Sprintf("%d nodes x %d ppn x %d HCAs (%s)", c.Nodes, c.PPN, c.HCAs, c.Layout)
}
