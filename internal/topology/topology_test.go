package topology

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBlockMapping(t *testing.T) {
	c := New(4, 8, 2)
	if c.Size() != 32 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(7) != 0 || c.NodeOf(8) != 1 || c.NodeOf(31) != 3 {
		t.Fatal("block NodeOf wrong")
	}
	if c.LocalOf(9) != 1 || c.RankOf(1, 1) != 9 {
		t.Fatal("block LocalOf/RankOf wrong")
	}
	if c.LeaderOf(2) != 16 || !c.IsLeader(16) || c.IsLeader(17) {
		t.Fatal("leader wrong")
	}
	if !c.SameNode(8, 15) || c.SameNode(7, 8) {
		t.Fatal("SameNode wrong")
	}
}

func TestCyclicMapping(t *testing.T) {
	c := Cluster{Nodes: 3, PPN: 2, HCAs: 1, Layout: Cyclic}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NodeOf(4) != 1 || c.LocalOf(4) != 1 {
		t.Fatalf("cyclic NodeOf(4)=%d LocalOf(4)=%d", c.NodeOf(4), c.LocalOf(4))
	}
	if c.RankOf(1, 1) != 4 {
		t.Fatalf("cyclic RankOf(1,1)=%d", c.RankOf(1, 1))
	}
}

func TestNodeRanksAndLeaders(t *testing.T) {
	c := New(3, 2, 1)
	if got := c.NodeRanks(1); got[0] != 2 || got[1] != 3 {
		t.Fatalf("NodeRanks(1) = %v", got)
	}
	if got := c.Leaders(); len(got) != 3 || got[2] != 4 {
		t.Fatalf("Leaders = %v", got)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	bad := []Cluster{
		{Nodes: 0, PPN: 1, HCAs: 1},
		{Nodes: 1, PPN: 0, HCAs: 1},
		{Nodes: 1, PPN: 1, HCAs: 0},
		{Nodes: 1, PPN: 1, HCAs: 1, Layout: Layout(9)},
		{Nodes: 1, PPN: 1, HCAs: 1, Sockets: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: %+v should not validate", i, c)
		}
	}
}

// Regression: a zero-HCA node entry used to be representable and
// silently produced empty transfer plans; it must now be rejected with
// a typed error naming the field.
func TestValidateRejectsZeroHCANode(t *testing.T) {
	c := Cluster{Nodes: 3, PPN: 2, HCAs: 2, NodeHCAs: []int{2, 0, 1}}
	err := c.Validate()
	if err == nil {
		t.Fatal("zero-HCA node should not validate")
	}
	var te *Error
	if !errors.As(err, &te) || te.Field != "NodeHCAs" {
		t.Fatalf("want *topology.Error on NodeHCAs, got %v", err)
	}
}

// Regression: a custom placement listing a rank twice must be rejected
// with a typed error instead of building a world where the duplicate
// shadows a missing rank.
func TestValidateRejectsDuplicateRanks(t *testing.T) {
	c := Cluster{Nodes: 2, PPN: 2, HCAs: 1, Layout: Custom,
		Ranks: [][]int{{0, 1}, {1, 3}}}
	err := c.Validate()
	if err == nil {
		t.Fatal("duplicate rank placement should not validate")
	}
	var te *Error
	if !errors.As(err, &te) || te.Field != "Ranks" {
		t.Fatalf("want *topology.Error on Ranks, got %v", err)
	}
}

func TestHeterogeneousShapes(t *testing.T) {
	bad := []Cluster{
		{Nodes: 2, PPN: 1, HCAs: 2, NodeHCAs: []int{2}},                       // wrong length
		{Nodes: 2, PPN: 1, HCAs: 2, NodeHCAs: []int{2, 3}},                    // above max
		{Nodes: 2, PPN: 1, HCAs: 2, RailBW: []float64{1}},                     // wrong length
		{Nodes: 2, PPN: 1, HCAs: 2, RailBW: []float64{1, 0}},                  // zero scale
		{Nodes: 2, PPN: 1, HCAs: 1, Ranks: [][]int{{0}, {1}}},                 // ranks without custom
		{Nodes: 2, PPN: 1, HCAs: 1, Layout: Custom},                           // custom without ranks
		{Nodes: 2, PPN: 1, HCAs: 1, Layout: Custom, Ranks: [][]int{{0}, {2}}}, // out of range
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: %+v should not validate", i, c)
		}
	}
	c := Cluster{Nodes: 3, PPN: 2, HCAs: 2,
		NodeHCAs: []int{2, 1, 2}, RailBW: []float64{1, 0.5}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.HCAsOf(0) != 2 || c.HCAsOf(1) != 1 {
		t.Fatal("HCAsOf wrong")
	}
	if c.RailScale(0) != 1 || c.RailScale(1) != 0.5 {
		t.Fatal("RailScale wrong")
	}
	if !c.Heterogeneous() {
		t.Fatal("mixed shape should report heterogeneous")
	}
	if New(2, 2, 2).Heterogeneous() {
		t.Fatal("uniform shape should not report heterogeneous")
	}
	if New(2, 2, 2).HCAsOf(1) != 2 || New(2, 2, 2).RailScale(1) != 1 {
		t.Fatal("uniform defaults wrong")
	}
}

func TestCustomLayoutMapping(t *testing.T) {
	c := Cluster{Nodes: 2, PPN: 2, HCAs: 1, Layout: Custom,
		Ranks: [][]int{{3, 0}, {2, 1}}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NodeOf(3) != 0 || c.LocalOf(3) != 0 || c.NodeOf(1) != 1 || c.LocalOf(1) != 1 {
		t.Fatal("custom NodeOf/LocalOf wrong")
	}
	if c.RankOf(1, 0) != 2 || c.LeaderOf(0) != 3 {
		t.Fatal("custom RankOf/LeaderOf wrong")
	}
	for r := 0; r < c.Size(); r++ {
		if c.RankOf(c.NodeOf(r), c.LocalOf(r)) != r {
			t.Fatalf("custom round-trip broken at rank %d", r)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := New(2, 2, 1)
	for _, fn := range []func(){
		func() { c.NodeOf(-1) },
		func() { c.NodeOf(4) },
		func() { c.RankOf(2, 0) },
		func() { c.RankOf(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: RankOf inverts (NodeOf, LocalOf) for both layouts.
func TestQuickMappingRoundTrip(t *testing.T) {
	f := func(nodes, ppn uint8, layout bool, rank uint16) bool {
		c := Cluster{Nodes: int(nodes)%16 + 1, PPN: int(ppn)%16 + 1, HCAs: 1}
		if layout {
			c.Layout = Cyclic
		}
		r := int(rank) % c.Size()
		return c.RankOf(c.NodeOf(r), c.LocalOf(r)) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every node has exactly PPN ranks and exactly one leader.
func TestQuickNodePartition(t *testing.T) {
	f := func(nodes, ppn uint8, layout bool) bool {
		c := Cluster{Nodes: int(nodes)%8 + 1, PPN: int(ppn)%8 + 1, HCAs: 1}
		if layout {
			c.Layout = Cyclic
		}
		seen := map[int]bool{}
		for n := 0; n < c.Nodes; n++ {
			rs := c.NodeRanks(n)
			if len(rs) != c.PPN {
				return false
			}
			leaders := 0
			for _, r := range rs {
				if seen[r] {
					return false
				}
				seen[r] = true
				if c.NodeOf(r) != n {
					return false
				}
				if c.IsLeader(r) {
					leaders++
				}
			}
			if leaders != 1 {
				return false
			}
		}
		return len(seen) == c.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Fatal("layout strings")
	}
	if Layout(7).String() == "" {
		t.Fatal("unknown layout string empty")
	}
	if New(2, 2, 2).String() == "" {
		t.Fatal("cluster string empty")
	}
}

func TestSocketMapping(t *testing.T) {
	c := Cluster{Nodes: 2, PPN: 8, HCAs: 2, Sockets: 2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumaSockets() != 2 {
		t.Fatal("NumaSockets")
	}
	for l := 0; l < 4; l++ {
		if c.SocketOf(l) != 0 {
			t.Fatalf("local %d should be socket 0", l)
		}
	}
	for l := 4; l < 8; l++ {
		if c.SocketOf(l) != 1 {
			t.Fatalf("local %d should be socket 1", l)
		}
	}
	if !c.SameSocket(0, 3) || c.SameSocket(3, 4) {
		t.Fatal("SameSocket wrong")
	}
	got := c.SocketLocals(1)
	if len(got) != 4 || got[0] != 4 || got[3] != 7 {
		t.Fatalf("SocketLocals(1) = %v", got)
	}
}

func TestFlatTopologySockets(t *testing.T) {
	c := New(2, 4, 1) // Sockets zero: flat
	if c.NumaSockets() != 1 {
		t.Fatal("flat node should report 1 socket")
	}
	for l := 0; l < 4; l++ {
		if c.SocketOf(l) != 0 {
			t.Fatal("flat node locals all on socket 0")
		}
	}
}

func TestSocketValidation(t *testing.T) {
	c := Cluster{Nodes: 1, PPN: 6, HCAs: 1, Sockets: 4} // 6 % 4 != 0
	if c.Validate() == nil {
		t.Fatal("indivisible socket split should fail")
	}
}

func TestSocketPanics(t *testing.T) {
	c := Cluster{Nodes: 1, PPN: 4, HCAs: 1, Sockets: 2}
	for _, fn := range []func(){
		func() { c.SocketOf(-1) },
		func() { c.SocketOf(4) },
		func() { c.SocketLocals(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: socket groups partition the node's locals.
func TestQuickSocketPartition(t *testing.T) {
	f := func(perSock, socks uint8) bool {
		s := int(socks)%4 + 1
		c := Cluster{Nodes: 1, PPN: s * (int(perSock)%5 + 1), HCAs: 1, Sockets: s}
		if c.Validate() != nil {
			return false
		}
		seen := map[int]bool{}
		for sock := 0; sock < s; sock++ {
			for _, l := range c.SocketLocals(sock) {
				if seen[l] || c.SocketOf(l) != sock {
					return false
				}
				seen[l] = true
			}
		}
		return len(seen) == c.PPN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
