package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry in the Chrome trace-event format ("Trace Event
// Format", the JSON consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`  // microseconds
	Dur   float64                `json:"dur"` // microseconds
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace renders the recorded events as a Chrome trace-event
// JSON array: one complete ("X") event per recorded interval, with the
// simulated rank as the thread id, so chrome://tracing or Perfetto lay
// out the timeline exactly like the ASCII Gantt but zoomable.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := r.Events()
	out := make([]chromeEvent, 0, len(evs))
	for _, ev := range evs {
		ce := chromeEvent{
			Name:  ev.Name,
			Cat:   string(ev.Cat),
			Phase: "X",
			TS:    ev.Start.Micros(),
			Dur:   (ev.End - ev.Start).Micros(),
			PID:   0,
			TID:   ev.Rank,
		}
		if ev.Peer >= 0 || ev.Bytes > 0 {
			ce.Args = map[string]interface{}{}
			if ev.Peer >= 0 {
				ce.Args["peer"] = ev.Peer
			}
			if ev.Bytes > 0 {
				ce.Args["bytes"] = ev.Bytes
			}
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
