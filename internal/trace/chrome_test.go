package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"mha/internal/sim"
)

// chromeRecord mirrors the exported JSON shape for decoding in tests.
type chromeRecord struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Args  map[string]interface{} `json:"args"`
}

func sampleRecorder() *Recorder {
	r := New()
	// Insert out of order to exercise the canonical sort.
	r.Add(Event{Rank: 1, Cat: CatHCA, Name: "xfer", Start: 5000, End: 9000, Peer: 0, Bytes: 4096})
	r.Add(Event{Rank: 0, Cat: CatSend, Name: "isend", Start: 0, End: 1000, Peer: 1, Bytes: 4096})
	r.Add(Event{Rank: 0, Cat: CatCompute, Name: "compute", Start: 2000, End: 4000, Peer: -1})
	r.Add(Event{Rank: 2, Cat: CatRecv, Name: "wait", Start: 2000, End: 9500, Peer: 0, Bytes: 64})
	return r
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []chromeRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(recs) != 4 {
		t.Fatalf("exported %d events, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Phase != "X" {
			t.Errorf("event %d: phase %q, want complete (X)", i, r.Phase)
		}
		if r.PID != 0 {
			t.Errorf("event %d: pid %d, want 0 (one simulated job)", i, r.PID)
		}
		if r.Dur < 0 {
			t.Errorf("event %d: negative duration %v", i, r.Dur)
		}
		if i > 0 && r.TS < recs[i-1].TS {
			t.Errorf("event %d: ts %v before previous %v (must be non-decreasing)", i, r.TS, recs[i-1].TS)
		}
	}
}

func TestWriteChromeTraceMapping(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []chromeRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	// Events() sorts by (start, rank): isend@0, compute@2000(rank0),
	// wait@2000(rank2), xfer@5000(rank1).
	wantTID := []int{0, 0, 2, 1}
	wantTS := []float64{0, 2, 2, 5} // microseconds
	for i, r := range recs {
		if r.TID != wantTID[i] {
			t.Errorf("event %d (%s): tid %d, want rank %d", i, r.Name, r.TID, wantTID[i])
		}
		if r.TS != wantTS[i] {
			t.Errorf("event %d (%s): ts %v, want %vus", i, r.Name, r.TS, wantTS[i])
		}
	}
	// Args carry peer/bytes only when meaningful.
	if recs[0].Args["peer"] != float64(1) || recs[0].Args["bytes"] != float64(4096) {
		t.Errorf("isend args = %v", recs[0].Args)
	}
	if _, ok := recs[1].Args["peer"]; ok {
		t.Errorf("compute (peer -1) should omit peer, has %v", recs[1].Args)
	}
}

func TestWriteChromeTraceFromLiveRun(t *testing.T) {
	// A real (if tiny) simulation: ts ordering and duration consistency
	// must hold for engine-produced timestamps too.
	rec := New()
	e := sim.NewEngine()
	r := e.NewResource("rail")
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			start, end := r.Acquire(7 * sim.Microsecond)
			p.WaitUntil(end)
			rec.Add(Event{Rank: 0, Cat: CatHCA, Name: "xfer", Start: start, End: end, Peer: -1, Bytes: 128})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []chromeRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("exported %d events, want 3", len(recs))
	}
	for i, cr := range recs {
		if cr.Dur != 7 {
			t.Errorf("event %d: dur %v, want 7us", i, cr.Dur)
		}
		if want := float64(i * 7); cr.TS != want {
			t.Errorf("event %d: ts %v, want %v", i, cr.TS, want)
		}
	}
}
