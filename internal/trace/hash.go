package trace

import (
	"encoding/binary"
	"hash/fnv"
)

// Hash returns an order-independent-of-insertion fingerprint of the
// recorded timeline: FNV-1a over every field of every event in the
// canonical Events() order. Two runs of a deterministic simulation with
// identical inputs must produce identical hashes; the verification
// harness uses this to detect nondeterminism. Hash on a nil or empty
// recorder returns the FNV offset basis.
func (r *Recorder) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	num := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, ev := range r.Events() {
		num(int64(ev.Rank))
		h.Write([]byte(ev.Cat))
		h.Write([]byte{0})
		h.Write([]byte(ev.Name))
		h.Write([]byte{0})
		num(int64(ev.Start))
		num(int64(ev.End))
		num(int64(ev.Peer))
		num(int64(ev.Bytes))
	}
	return h.Sum64()
}
