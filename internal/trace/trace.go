// Package trace records simulated communication events on the global
// virtual timeline and renders them as an ASCII Gantt chart, standing in
// for the TAU trace visualizations in the paper (its Figure 2).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mha/internal/sim"
)

// Category classifies an event for rendering.
type Category string

// Categories used by the MPI runtime and collectives.
const (
	CatSend    Category = "send"    // point-to-point send (CPU side)
	CatRecv    Category = "recv"    // point-to-point receive / wait for data
	CatHCA     Category = "hca"     // transfer carried by a network adapter
	CatCopyIn  Category = "copyin"  // copy into shared memory
	CatCopyOut Category = "copyout" // copy out of shared memory
	CatCompute Category = "compute" // local computation
	CatWait    Category = "wait"    // waiting on a request or counter
	CatPhase   Category = "phase"   // algorithm phase marker
	CatFault   Category = "fault"   // rail fault window / failover decision
	CatJob     Category = "job"     // multi-tenant job admission / completion
)

// Event is one timed interval on some rank's timeline.
type Event struct {
	Rank  int
	Cat   Category
	Name  string
	Start sim.Time
	End   sim.Time
	Peer  int // peer rank, or -1
	Bytes int
}

// Recorder accumulates events. The zero value is unusable; use New. A nil
// *Recorder is a valid no-op sink, so tracing can stay compiled into hot
// paths guarded only by a nil check.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records an event. Add on a nil recorder is a no-op.
func (r *Recorder) Add(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Events returns a copy of all recorded events sorted by start time, then
// rank, preserving insertion order among ties.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// glyphs maps categories to single-character lane fills.
var glyphs = map[Category]byte{
	CatSend:    'S',
	CatRecv:    'R',
	CatHCA:     'H',
	CatCopyIn:  'I',
	CatCopyOut: 'O',
	CatCompute: 'C',
	CatWait:    '.',
	CatPhase:   '|',
	CatFault:   'X',
	CatJob:     'J',
}

// Timeline renders the recorded events as an ASCII Gantt chart with one
// lane per rank, width columns wide. Later events overwrite earlier ones in
// a cell; CatWait never overwrites anything else.
func (r *Recorder) Timeline(width int) string {
	evs := r.Events()
	if len(evs) == 0 {
		return "(no events)\n"
	}
	if width < 10 {
		width = 10
	}
	maxRank := 0
	var tEnd sim.Time
	for _, ev := range evs {
		if ev.Rank > maxRank {
			maxRank = ev.Rank
		}
		if ev.End > tEnd {
			tEnd = ev.End
		}
	}
	if tEnd == 0 {
		tEnd = 1
	}
	lanes := make([][]byte, maxRank+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(t sim.Time) int {
		c := int(int64(t) * int64(width) / int64(tEnd))
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, ev := range evs {
		g, ok := glyphs[ev.Cat]
		if !ok {
			g = '?'
		}
		c0, c1 := col(ev.Start), col(ev.End)
		for c := c0; c <= c1; c++ {
			if g == '.' && lanes[ev.Rank][c] != ' ' {
				continue // waits don't overwrite real work
			}
			lanes[ev.Rank][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "t=0%s%v\n", strings.Repeat(" ", width-len(fmt.Sprint(tEnd))), tEnd)
	for rank, lane := range lanes {
		fmt.Fprintf(&b, "rank %3d |%s|\n", rank, lane)
	}
	b.WriteString("legend: S=send R=recv H=HCA transfer I=shm copy-in O=shm copy-out C=compute X=fault J=job .=wait\n")
	return b.String()
}

// Listing renders events as a readable per-event log, one line each.
func (r *Recorder) Listing() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		peer := ""
		if ev.Peer >= 0 {
			peer = fmt.Sprintf(" peer=%d", ev.Peer)
		}
		size := ""
		if ev.Bytes > 0 {
			size = fmt.Sprintf(" %dB", ev.Bytes)
		}
		fmt.Fprintf(&b, "[%12v %12v] rank %3d %-8s %s%s%s\n",
			ev.Start, ev.End, ev.Rank, ev.Cat, ev.Name, peer, size)
	}
	return b.String()
}
