package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"mha/internal/sim"
)

func ev(rank int, cat Category, start, end int64) Event {
	return Event{Rank: rank, Cat: cat, Name: string(cat), Start: sim.Time(start), End: sim.Time(end), Peer: -1}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Add(ev(0, CatSend, 0, 1)) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should be empty")
	}
	r.Reset()
	if !strings.Contains(r.Timeline(40), "no events") {
		t.Fatal("nil recorder timeline should say no events")
	}
}

func TestEventsSortedByStart(t *testing.T) {
	r := New()
	r.Add(ev(1, CatRecv, 50, 60))
	r.Add(ev(0, CatSend, 10, 20))
	r.Add(ev(2, CatHCA, 10, 30))
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0].Rank != 0 || got[1].Rank != 2 || got[2].Rank != 1 {
		t.Fatalf("order wrong: %+v", got)
	}
}

func TestTimelineRendersLanes(t *testing.T) {
	r := New()
	r.Add(ev(0, CatSend, 0, 500))
	r.Add(ev(1, CatRecv, 500, 1000))
	out := r.Timeline(40)
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Fatalf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "R") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Fatal("missing legend")
	}
}

func TestTimelineWaitDoesNotOverwrite(t *testing.T) {
	r := New()
	r.Add(ev(0, CatSend, 0, 1000))
	r.Add(ev(0, CatWait, 0, 1000))
	out := r.Timeline(20)
	if strings.Contains(strings.Split(out, "\n")[1], ".") {
		t.Fatalf("wait overwrote send:\n%s", out)
	}
}

func TestTimelineUnknownCategory(t *testing.T) {
	r := New()
	r.Add(ev(0, Category("weird"), 0, 10))
	if !strings.Contains(r.Timeline(20), "?") {
		t.Fatal("unknown category should render as ?")
	}
}

func TestListingIncludesDetails(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 3, Cat: CatHCA, Name: "hca(x2)", Start: 1000, End: 2000, Peer: 7, Bytes: 4096})
	out := r.Listing()
	for _, want := range []string{"rank   3", "hca(x2)", "peer=7", "4096B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestResetClears(t *testing.T) {
	r := New()
	r.Add(ev(0, CatSend, 0, 1))
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTimelineMinWidth(t *testing.T) {
	r := New()
	r.Add(ev(0, CatSend, 0, 100))
	out := r.Timeline(1) // clamped up to 10
	if len(strings.Split(out, "\n")[1]) < 10 {
		t.Fatalf("width not clamped:\n%s", out)
	}
}

// Property: the timeline always has one lane per rank up to the max rank,
// and rendering never panics for arbitrary event sets.
func TestQuickTimelineLaneCount(t *testing.T) {
	cats := []Category{CatSend, CatRecv, CatHCA, CatCopyIn, CatCopyOut, CatCompute, CatWait}
	f := func(raw []struct {
		Rank  uint8
		Cat   uint8
		Start uint16
		Dur   uint16
	}) bool {
		if len(raw) == 0 {
			return true
		}
		r := New()
		maxRank := 0
		for _, e := range raw {
			rank := int(e.Rank) % 16
			if rank > maxRank {
				maxRank = rank
			}
			start := int64(e.Start)
			r.Add(Event{
				Rank:  rank,
				Cat:   cats[int(e.Cat)%len(cats)],
				Start: sim.Time(start),
				End:   sim.Time(start + int64(e.Dur)),
				Peer:  -1,
			})
		}
		out := r.Timeline(60)
		lanes := 0
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "rank ") {
				lanes++
			}
		}
		return lanes == maxRank+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := New()
	r.Add(Event{Rank: 1, Cat: CatHCA, Name: "hca(x2)", Start: 1000, End: 3000, Peer: 4, Bytes: 512})
	r.Add(Event{Rank: 0, Cat: CatCompute, Name: "compute", Start: 0, End: 500, Peer: -1})
	var buf strings.Builder
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal([]byte(buf.String()), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	// Sorted by start: compute first.
	if events[0]["name"] != "compute" || events[0]["ph"] != "X" {
		t.Fatalf("first event wrong: %v", events[0])
	}
	second := events[1]
	if second["tid"].(float64) != 1 || second["dur"].(float64) != 2 {
		t.Fatalf("hca event wrong: %v", second)
	}
	args := second["args"].(map[string]interface{})
	if args["peer"].(float64) != 4 || args["bytes"].(float64) != 512 {
		t.Fatalf("args wrong: %v", args)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf strings.Builder
	if err := New().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("empty trace = %q", buf.String())
	}
}
