package tuner

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"

	"mha/internal/netmodel"
)

// The schedule cache: a plain LRU over canonical keys, with a JSON
// persistence form so a daemon restart (or an mhatune -o-cache export)
// warm-starts instead of re-synthesizing. Everything about it is
// deterministic: recency lives in a linked list, the map is only an
// index (never iterated), and Save walks the list oldest-first — so the
// same query sequence always persists to the same bytes, which is what
// the determinism test diffs.

// cacheEntry is one cached decision plus its canonical wire bytes.
type cacheEntry struct {
	key string
	dec *Decision
	raw []byte
}

// lruCache is not self-locking; the Service's mutex guards it.
type lruCache struct {
	cap       int
	ll        *list.List // front = most recently used
	idx       map[string]*list.Element
	evictions int64
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), idx: make(map[string]*list.Element)}
}

func (c *lruCache) len() int { return c.ll.Len() }

// get returns the entry and marks it most recently used.
func (c *lruCache) get(key string) *cacheEntry {
	el := c.idx[key]
	if el == nil {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// put inserts (or refreshes) an entry, evicting the least recently used
// one when over capacity.
func (c *lruCache) put(e *cacheEntry) {
	if el := c.idx[e.key]; el != nil {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.idx[e.key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		delete(c.idx, back.Value.(*cacheEntry).key)
		c.ll.Remove(back)
		c.evictions++
	}
}

// keys lists the cached keys, most recently used first.
func (c *lruCache) keys() []string {
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// The persisted form. Entries are written oldest-first, so replaying
// them through put in file order reproduces the exact recency order the
// cache had when saved.
type persistFile struct {
	Version int            `json:"version"`
	Entries []persistEntry `json:"entries"`
}

type persistEntry struct {
	Key      string          `json:"key"`
	Decision json.RawMessage `json:"decision"`
}

const persistVersion = 1

// save writes the cache in the persistence format.
func (c *lruCache) save(w io.Writer) error {
	pf := persistFile{Version: persistVersion}
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		pf.Entries = append(pf.Entries, persistEntry{Key: e.key, Decision: e.raw})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pf)
}

// load replays a persisted cache into c, fully re-verifying every
// decision (see DecodeDecision). It returns the number of entries
// restored; any invalid entry fails the whole load, leaving c as it was
// plus the entries already replayed — callers treat an error as "start
// cold".
func (c *lruCache) load(r io.Reader, prm *netmodel.Params) (int, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var pf persistFile
	if err := dec.Decode(&pf); err != nil {
		return 0, fmt.Errorf("tuner: bad cache file: %v", err)
	}
	if pf.Version != persistVersion {
		return 0, fmt.Errorf("tuner: cache file version %d, want %d", pf.Version, persistVersion)
	}
	n := 0
	for i, pe := range pf.Entries {
		d, err := DecodeDecision(pe.Decision, prm)
		if err != nil {
			return n, fmt.Errorf("tuner: cache entry %d: %v", i, err)
		}
		if d.Key != pe.Key {
			return n, fmt.Errorf("tuner: cache entry %d: key mismatch", i)
		}
		// Re-encode rather than trusting the file's spacing: the cached
		// raw bytes must be exactly what a fresh synthesis would emit.
		raw, err := d.Encode()
		if err != nil {
			return n, err
		}
		c.put(&cacheEntry{key: d.Key, dec: d, raw: raw})
		n++
	}
	return n, nil
}
