package tuner

import (
	"encoding/json"
	"fmt"

	"mha/internal/netmodel"
	"mha/internal/sched"
)

// Decision is the service's answer to one canonical query: the chosen
// schedule plus the numbers that justified it. Its JSON form is the wire
// response and the persisted cache value, and it is byte-stable: the
// struct marshals field-by-field in declaration order, so the same
// Decision always renders to the same bytes — which is what lets a test
// diff a cache hit against a fresh cold synthesis.
type Decision struct {
	// Key is the cache key the decision is stored under.
	Key string `json:"key"`
	// Query is the canonical query (see Query.Canonical).
	Query Query `json:"query"`
	// Name is the winning schedule's name (its lowering/mutation lineage).
	Name string `json:"name"`
	// CostUS is the analyzer's health-aware alpha-beta prediction.
	CostUS float64 `json:"cost_us"`
	// MakespanUS is the simulated makespan, 0 when the analytic margin
	// pruned the simulation pass (see Pruned).
	MakespanUS float64 `json:"makespan_us,omitempty"`
	// PredictedUS is the Section-4 closed-form model's estimate for the
	// shape, recorded for cross-checking the pick against the paper's
	// analytics.
	PredictedUS float64 `json:"predicted_us"`
	// Pruned records that the analytic margin made simulation unnecessary.
	Pruned bool `json:"pruned,omitempty"`
	// Source is "synth" for daemon-synthesized decisions, "mhatune" for
	// entries imported from a measured tuning table (mhatune -o-cache).
	Source string `json:"source"`
	// Schedule is the winning schedule in the sched-IR JSON form.
	Schedule json.RawMessage `json:"schedule"`
}

// Encode renders the canonical wire/persisted bytes.
//
//lint:pure persisted bytes must be a function of the decision alone
func (d *Decision) Encode() ([]byte, error) {
	return json.Marshal(d)
}

// DecodeDecision parses and fully re-verifies a decision — used when
// loading a persisted cache, where the file contents are not trusted:
// the query must canonicalize back to the stored key, the schedule must
// parse, match the query's machine and message size, and pass the
// health-aware analyzer invariants (completeness, hold, rail conflicts,
// no dead-rail pins). Anything less and a corrupt or stale cache file
// could serve a wrong schedule forever.
func DecodeDecision(data []byte, prm *netmodel.Params) (*Decision, error) {
	var d Decision
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("tuner: bad decision: %v", err)
	}
	cq, key, err := d.Query.Canonical()
	if err != nil {
		return nil, fmt.Errorf("tuner: decision query invalid: %v", err)
	}
	if key != d.Key {
		return nil, fmt.Errorf("tuner: decision key %.12s does not match its query (want %.12s)", d.Key, key)
	}
	if !cq.equal(d.Query) {
		return nil, fmt.Errorf("tuner: decision query %v is not in canonical form (want %v)", d.Query, cq)
	}
	if d.Source == "" {
		return nil, fmt.Errorf("tuner: decision has no source")
	}
	s, err := sched.Parse(string(d.Schedule))
	if err != nil {
		return nil, fmt.Errorf("tuner: decision schedule: %v", err)
	}
	if !s.Topo.Equal(cq.Cluster()) || s.Msg != cq.Msg {
		return nil, fmt.Errorf("tuner: decision schedule is for %v msg=%d, query wants %v msg=%d",
			s.Topo, s.Msg, cq.Cluster(), cq.Msg)
	}
	if _, err := sched.AnalyzeHealth(s, prm, cq.Health); err != nil {
		return nil, fmt.Errorf("tuner: decision schedule fails invariants: %v", err)
	}
	return &d, nil
}
