package tuner

import (
	"testing"
)

// FuzzParseQuery holds ParseQuery to its contract: arbitrary request
// bodies — malformed JSON, absurd shapes, hostile numbers — either parse
// into a query that re-validates and canonicalizes cleanly, or return an
// error. Never a panic: this function fronts a network daemon.
func FuzzParseQuery(f *testing.F) {
	f.Add([]byte(`{"nodes":2,"ppn":8,"hcas":2,"msg":65536}`))
	f.Add([]byte(`{"nodes":4,"ppn":8,"hcas":2,"layout":"cyclic","msg":1048576,"health":[1,0.5]}`))
	f.Add([]byte(`{"nodes":1,"ppn":1,"hcas":1,"msg":1}`))
	f.Add([]byte(`{"nodes":-1,"ppn":1e9,"hcas":999,"msg":0}`))
	f.Add([]byte(`{"nodes":2,"ppn":2,"hcas":2,"msg":64,"health":[null,"x"]}`))
	f.Add([]byte(`{"nodes":1000000000,"ppn":1000000000,"hcas":16,"msg":67108864}`))
	f.Add([]byte(`{"nodes":4,"ppn":2,"hcas":2,"msg":4096,"fabric":"ft:arity=2,levels=2,over=2:1"}`))
	f.Add([]byte(`{"nodes":4,"ppn":2,"hcas":2,"msg":4096,"fabric":"dfly:groups=2,routers=2,nodes=1"}`))
	f.Add([]byte(`{"nodes":4,"ppn":2,"hcas":2,"msg":4096,"fabric":"flat"}`))
	f.Add([]byte(`{"nodes":4,"ppn":2,"hcas":2,"msg":4096,"fabric":"ft:arity=0"}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ParseQuery(data)
		if err != nil {
			return
		}
		// An accepted query must be internally consistent: validation is
		// idempotent and canonicalization succeeds and is stable.
		if err := q.validate(); err != nil {
			t.Fatalf("ParseQuery accepted %q but validate rejects: %v", data, err)
		}
		cq, key, err := q.Canonical()
		if err != nil {
			t.Fatalf("ParseQuery accepted %q but Canonical rejects: %v", data, err)
		}
		cq2, key2, err := cq.Canonical()
		if err != nil {
			t.Fatalf("canonical form of %q fails Canonical: %v", data, err)
		}
		if key != key2 || !cq.equal(cq2) {
			t.Fatalf("Canonical not idempotent for %q: %v/%s vs %v/%s", data, cq, key, cq2, key2)
		}
	})
}
