package tuner

import (
	"fmt"
	"io"

	"mha/internal/core"
	"mha/internal/netmodel"
	"mha/internal/sched"
)

// Importing measured tuning tables. mhatune produces a core.TuningTable
// of measured-best (algorithm, offload) picks per message-size class;
// mhatune -o-cache converts that table into the daemon's cache format so
// a measured machine profile warm-starts mhatuned. Each table entry
// becomes one Decision at the entry's size-class boundary: the schedule
// is the TwoPhaseMHA lowering the measurement selected (its algorithm
// and offload), the makespan is the measured latency, and the source is
// marked "mhatune" to distinguish it from daemon-synthesized picks.

// ImportTuningTable converts a measured tuning table into decisions in
// the daemon's cache format, oldest (smallest size class) first.
func ImportTuningTable(prm *netmodel.Params, tbl core.TuningTable) ([]*Decision, error) {
	if prm == nil {
		prm = netmodel.Thor()
	}
	base := Query{Nodes: tbl.Nodes, PPN: tbl.PPN, HCAs: tbl.HCAs}
	if len(tbl.Entries) == 0 {
		return nil, fmt.Errorf("tuner: tuning table for %dx%dx%d has no entries", tbl.Nodes, tbl.PPN, tbl.HCAs)
	}
	var out []*Decision
	seen := make(map[string]bool)
	for _, e := range tbl.Entries {
		q := base
		q.Msg = e.MaxBytes
		if q.Msg > MaxQueryMsg {
			q.Msg = MaxQueryMsg
		}
		cq, key, err := q.Canonical()
		if err != nil {
			return nil, fmt.Errorf("tuner: tuning table entry at %d bytes: %v", e.MaxBytes, err)
		}
		if seen[key] {
			// Two size classes clamped onto one query (table reaches past
			// MaxQueryMsg); the first — the measured class at the limit — wins.
			continue
		}
		seen[key] = true
		opt := sched.MHAOptions{Offload: int(e.OffloadD)}
		measured := e.RingUS
		if e.Alg == "rd" {
			opt.Phase2 = sched.Phase2RD
			measured = e.RDUS
		}
		s := sched.TwoPhaseMHA(cq.Cluster(), prm, cq.Msg, opt)
		rep, err := sched.Analyze(s, prm)
		if err != nil {
			return nil, fmt.Errorf("tuner: lowered table entry at %d bytes fails invariants: %v", e.MaxBytes, err)
		}
		js, err := s.JSON()
		if err != nil {
			return nil, err
		}
		dec := &Decision{
			Key:         key,
			Query:       cq,
			Name:        s.Name,
			CostUS:      rep.Cost.Micros(),
			MakespanUS:  measured,
			PredictedUS: predictQueryUS(prm, cq),
			Source:      "mhatune",
			Schedule:    js,
		}
		out = append(out, dec)
	}
	return out, nil
}

// SaveDecisions writes decisions as a cache file the daemon's -cache
// flag (or Service.LoadCache) accepts; order is preserved as the cache's
// oldest-to-newest recency order.
func SaveDecisions(w io.Writer, decs []*Decision) error {
	c := newLRU(len(decs))
	for _, d := range decs {
		raw, err := d.Encode()
		if err != nil {
			return err
		}
		c.put(&cacheEntry{key: d.Key, dec: d, raw: raw})
	}
	return c.save(w)
}
