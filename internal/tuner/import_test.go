package tuner

import (
	"bytes"
	"testing"

	"mha/internal/core"
	"mha/internal/netmodel"
	"mha/internal/topology"
)

func TestImportTuningTable(t *testing.T) {
	prm := netmodel.Thor()
	topo := topology.New(2, 4, 2)
	tbl := core.BuildTuningTable(topo, prm, []int{4096, 65536})

	decs, err := ImportTuningTable(prm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != len(tbl.Entries) {
		t.Fatalf("imported %d decisions from %d entries", len(decs), len(tbl.Entries))
	}
	for i, d := range decs {
		if d.Source != "mhatune" {
			t.Errorf("decision %d source %q, want mhatune", i, d.Source)
		}
		if d.MakespanUS <= 0 {
			t.Errorf("decision %d has no measured latency", i)
		}
		raw, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Imported decisions pass the same full re-verification persisted
		// synthesized ones do.
		if _, err := DecodeDecision(raw, prm); err != nil {
			t.Errorf("decision %d fails re-verification: %v", i, err)
		}
	}

	// The exported file loads into a service and answers warm.
	var buf bytes.Buffer
	if err := SaveDecisions(&buf, decs); err != nil {
		t.Fatal(err)
	}
	s := testService(8)
	n, err := s.LoadCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(decs) {
		t.Fatalf("loaded %d entries, want %d", n, len(decs))
	}
	res, err := s.Decide(Query{Nodes: 2, PPN: 4, HCAs: 2, Msg: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Error("imported entry did not serve a warm hit")
	}
	if res.Decision.Source != "mhatune" {
		t.Errorf("warm hit source %q, want mhatune", res.Decision.Source)
	}
	if s.SynthCount() != 0 {
		t.Error("imported warm hit still ran a synthesis")
	}
}

func TestImportClampsOversizedClasses(t *testing.T) {
	prm := netmodel.Thor()
	tbl := core.TuningTable{
		Nodes: 2, PPN: 2, HCAs: 2,
		Entries: []core.TuningEntry{
			{MaxBytes: 4096, Alg: "ring", OffloadD: 1, RingUS: 10, RDUS: 12},
			// Both of these clamp to MaxQueryMsg; only the first survives.
			{MaxBytes: MaxQueryMsg * 2, Alg: "ring", OffloadD: 1, RingUS: 100, RDUS: 120},
			{MaxBytes: MaxQueryMsg * 4, Alg: "rd", OffloadD: 1, RingUS: 200, RDUS: 180},
		},
	}
	decs, err := ImportTuningTable(prm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != 2 {
		t.Fatalf("imported %d decisions, want 2 (clamped duplicates dropped)", len(decs))
	}
	if decs[1].Query.Msg != MaxQueryMsg {
		t.Errorf("oversized class clamped to %d, want %d", decs[1].Query.Msg, MaxQueryMsg)
	}
	if decs[1].MakespanUS != 100 {
		t.Errorf("first clamped class should win: makespan %v, want 100", decs[1].MakespanUS)
	}
}
