package tuner

import (
	"fmt"
	"sync"
	"time"
)

// The synthetic load generator: drives Service.Decide directly (no HTTP
// overhead) with a fixed query mix from concurrent workers. It backs the
// warm-cache throughput tier-1 probe and `mhatuned -bench` — the claim
// under test being that a warm cache sustains ~10^5+ decisions/sec,
// i.e. a cached decision costs a mutex, a map lookup, and a list splice.

// LoadOptions shapes one load run.
type LoadOptions struct {
	// Workers is the number of concurrent client goroutines (default 4).
	Workers int
	// Requests is the total number of Decide calls (default 100000).
	Requests int
	// Queries is the mix, dealt round-robin across the run; empty means
	// PaperQueries().
	Queries []Query
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Requests int
	Hits     int64
	Elapsed  time.Duration
	// PerSec is Requests / Elapsed.
	PerSec float64
}

func (r LoadReport) String() string {
	return fmt.Sprintf("%d requests (%d hits) in %v: %.0f decisions/sec",
		r.Requests, r.Hits, r.Elapsed.Round(time.Millisecond), r.PerSec)
}

// RunLoad fires opt.Requests queries at s from opt.Workers goroutines.
// Worker w serves requests w, w+Workers, w+2*Workers, ... of the
// round-robin sequence, so the mix is deterministic regardless of
// scheduling.
func RunLoad(s *Service, opt LoadOptions) (LoadReport, error) {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.Requests <= 0 {
		opt.Requests = 100000
	}
	queries := opt.Queries
	if len(queries) == 0 {
		queries = PaperQueries()
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		hits     int64
		firstErr error
	)
	start := time.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local int64
			for i := w; i < opt.Requests; i += opt.Workers {
				res, err := s.Decide(queries[i%len(queries)])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if res.Hit {
					local++
				}
			}
			mu.Lock()
			hits += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return LoadReport{}, firstErr
	}
	rep := LoadReport{Requests: opt.Requests, Hits: hits, Elapsed: elapsed}
	if elapsed > 0 {
		rep.PerSec = float64(opt.Requests) / elapsed.Seconds()
	}
	return rep, nil
}
