package tuner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"mha/internal/fabric"
	"mha/internal/sched"
	"mha/internal/topology"
)

// Service limits. The daemon answers queries the synthesizer can turn
// around in interactive time; the analyzer itself reaches 4096 ranks, but
// a cold synthesis over thousands of ranks is a batch job, not a query.
const (
	// MaxQueryRanks caps nodes*ppn per query.
	MaxQueryRanks = 256
	// MaxQueryHCAs caps the rails per node.
	MaxQueryHCAs = 16
	// MaxQueryMsg caps the per-rank contribution (64 MiB).
	MaxQueryMsg = 1 << 26
	// maxQueryBytes caps the wire form of one request.
	maxQueryBytes = 1 << 16
)

// healthQuantum is the rail-health resolution of the cache key: fractions
// are rounded to 1/64ths before hashing, so monitoring noise (a rail at
// 0.501 vs 0.502 of line rate) does not shatter the cache into distinct
// keys. A fraction that quantizes to zero is treated as down.
const healthQuantum = 64

// Query asks the autotuner for the best allgather schedule on one
// machine state: the cluster shape, the inter-node fabric, the per-rank
// message size, and the steady rail-health vector (omitted = all rails
// healthy).
type Query struct {
	Nodes  int    `json:"nodes"`
	PPN    int    `json:"ppn"`
	HCAs   int    `json:"hcas"`
	Layout string `json:"layout,omitempty"` // "block" (default) or "cyclic"
	// Fabric is an internal/fabric spec ("" and "flat" mean the
	// non-blocking fabric). It is canonicalized into the cache key, so
	// equivalent spellings ("over=2" vs "over=2:1") share one entry and
	// a tapered fabric never serves a flat-fabric decision.
	Fabric string    `json:"fabric,omitempty"`
	Msg    int       `json:"msg"`
	Health []float64 `json:"health,omitempty"` // per rail, 0 down .. 1 healthy
}

// ParseQuery decodes one request body. It is strict — unknown fields,
// trailing garbage, and out-of-range values are errors, never panics —
// because it fronts a network service (FuzzParseQuery holds it to that).
func ParseQuery(data []byte) (Query, error) {
	if len(data) > maxQueryBytes {
		return Query{}, fmt.Errorf("tuner: query of %d bytes exceeds the %d-byte limit", len(data), maxQueryBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var q Query
	if err := dec.Decode(&q); err != nil {
		return Query{}, fmt.Errorf("tuner: bad query: %v", err)
	}
	if dec.More() {
		return Query{}, fmt.Errorf("tuner: trailing data after query")
	}
	if err := q.validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// validate bounds every field without normalizing anything.
func (q Query) validate() error {
	switch {
	case q.Nodes < 1 || q.PPN < 1:
		return fmt.Errorf("tuner: need nodes >= 1 and ppn >= 1, have %d x %d", q.Nodes, q.PPN)
	case q.Nodes > MaxQueryRanks || q.PPN > MaxQueryRanks || q.Nodes*q.PPN > MaxQueryRanks:
		return fmt.Errorf("tuner: %d x %d ranks exceed the %d-rank query limit", q.Nodes, q.PPN, MaxQueryRanks)
	case q.HCAs < 1 || q.HCAs > MaxQueryHCAs:
		return fmt.Errorf("tuner: hcas %d outside [1,%d]", q.HCAs, MaxQueryHCAs)
	case q.Msg < 1 || q.Msg > MaxQueryMsg:
		return fmt.Errorf("tuner: msg %d outside [1,%d]", q.Msg, MaxQueryMsg)
	}
	if q.Layout != "" && q.Layout != "block" && q.Layout != "cyclic" {
		return fmt.Errorf("tuner: unknown layout %q", q.Layout)
	}
	if q.Fabric != "" {
		fs, err := fabric.ParseSpec(q.Fabric)
		if err != nil {
			return fmt.Errorf("tuner: %v", err)
		}
		if err := fs.CheckNodes(q.Nodes); err != nil {
			return fmt.Errorf("tuner: %v", err)
		}
	}
	if q.Health != nil {
		if len(q.Health) != q.HCAs {
			return fmt.Errorf("tuner: health vector has %d entries for %d rails", len(q.Health), q.HCAs)
		}
		alive := false
		for r, h := range q.Health {
			if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 || h > 1 {
				return fmt.Errorf("tuner: rail %d health %v outside [0,1]", r, h)
			}
			// Liveness at key resolution: a rail below half a quantum is
			// down once quantized.
			if math.Round(h*healthQuantum) > 0 {
				alive = true
			}
		}
		if !alive {
			return fmt.Errorf("tuner: health vector leaves no rail alive")
		}
	}
	return nil
}

// Canonical normalizes the query into the form the cache is keyed on —
// explicit layout, the fabric spec in its canonical text (flat dropped
// entirely), health quantized to 1/64ths and dropped entirely when
// fully healthy — and derives the key: the hex SHA-256 of a versioned
// rendering of every normalized field. Two queries with the same
// canonical form are, to the synthesizer, the same machine state.
//
//lint:pure the cache key must depend on the query fields alone
func (q Query) Canonical() (Query, string, error) {
	if err := q.validate(); err != nil {
		return Query{}, "", err
	}
	cq := q
	if cq.Layout == "" {
		cq.Layout = "block"
	}
	if cq.Fabric != "" {
		fs, err := fabric.ParseSpec(cq.Fabric)
		if err != nil {
			return Query{}, "", fmt.Errorf("tuner: %v", err)
		}
		if fs.Kind == fabric.Flat {
			cq.Fabric = ""
		} else {
			cq.Fabric = fs.String()
		}
	}
	if cq.Health != nil {
		quant := make([]float64, len(cq.Health))
		healthy := true
		for r, h := range cq.Health {
			quant[r] = math.Round(h*healthQuantum) / healthQuantum
			if quant[r] != 1 {
				healthy = false
			}
		}
		if healthy {
			cq.Health = nil
		} else {
			cq.Health = quant
		}
	}
	if err := sched.ValidHealth(cq.Health, cq.HCAs); err != nil {
		return Query{}, "", fmt.Errorf("tuner: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mhatuned/v1|nodes=%d|ppn=%d|hcas=%d|layout=%s|msg=%d|health=",
		cq.Nodes, cq.PPN, cq.HCAs, cq.Layout, cq.Msg)
	for r, h := range cq.Health {
		if r > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(math.Round(h*healthQuantum)))
	}
	// The fabric segment is appended only when a structured fabric is
	// set, so every flat-fabric key — including those persisted before
	// the field existed — keeps its exact bytes.
	if cq.Fabric != "" {
		fmt.Fprintf(&b, "|fabric=%s", cq.Fabric)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return cq, hex.EncodeToString(sum[:]), nil
}

// Cluster is the topology the canonical query describes.
func (q Query) Cluster() topology.Cluster {
	layout := topology.Block
	if q.Layout == "cyclic" {
		layout = topology.Cyclic
	}
	return topology.Cluster{Nodes: q.Nodes, PPN: q.PPN, HCAs: q.HCAs, Layout: layout}
}

// equal compares two queries field-by-field (health as values).
func (q Query) equal(o Query) bool {
	if q.Nodes != o.Nodes || q.PPN != o.PPN || q.HCAs != o.HCAs ||
		q.Layout != o.Layout || q.Fabric != o.Fabric ||
		q.Msg != o.Msg || len(q.Health) != len(o.Health) {
		return false
	}
	for r, h := range q.Health {
		if o.Health[r] != h {
			return false
		}
	}
	return true
}

func (q Query) String() string {
	s := fmt.Sprintf("%dx%dx%d/%s msg=%d", q.Nodes, q.PPN, q.HCAs, q.Layout, q.Msg)
	if q.Fabric != "" {
		s += " fabric=" + q.Fabric
	}
	if q.Health != nil {
		s += fmt.Sprintf(" health=%v", q.Health)
	}
	return s
}
