package tuner

import (
	"strings"
	"testing"
)

func TestParseQueryRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"empty", "", "bad query"},
		{"not json", "hello", "bad query"},
		{"unknown field", `{"nodes":2,"ppn":2,"hcas":2,"msg":64,"bogus":1}`, "bad query"},
		{"trailing", `{"nodes":2,"ppn":2,"hcas":2,"msg":64}{}`, "trailing"},
		{"zero nodes", `{"nodes":0,"ppn":2,"hcas":2,"msg":64}`, "nodes"},
		{"negative ppn", `{"nodes":2,"ppn":-1,"hcas":2,"msg":64}`, "ppn"},
		{"too many ranks", `{"nodes":64,"ppn":64,"hcas":2,"msg":64}`, "rank"},
		{"absurd nodes", `{"nodes":1000000000,"ppn":1000000000,"hcas":2,"msg":64}`, "rank"},
		{"zero hcas", `{"nodes":2,"ppn":2,"hcas":0,"msg":64}`, "hcas"},
		{"too many hcas", `{"nodes":2,"ppn":2,"hcas":17,"msg":64}`, "hcas"},
		{"zero msg", `{"nodes":2,"ppn":2,"hcas":2,"msg":0}`, "msg"},
		{"huge msg", `{"nodes":2,"ppn":2,"hcas":2,"msg":999999999999}`, "msg"},
		{"bad layout", `{"nodes":2,"ppn":2,"hcas":2,"msg":64,"layout":"spiral"}`, "layout"},
		{"bad fabric", `{"nodes":2,"ppn":2,"hcas":2,"msg":64,"fabric":"torus:dims=3"}`, "fabric"},
		{"fabric misfit", `{"nodes":6,"ppn":2,"hcas":2,"msg":64,"fabric":"dfly:groups=2,routers=2,nodes=1"}`, "fabric"},
		{"health length", `{"nodes":2,"ppn":2,"hcas":2,"msg":64,"health":[1]}`, "health"},
		{"health range", `{"nodes":2,"ppn":2,"hcas":2,"msg":64,"health":[1,2]}`, "health"},
		{"health negative", `{"nodes":2,"ppn":2,"hcas":2,"msg":64,"health":[-0.5,1]}`, "health"},
		{"oversized body", `{"nodes":2,"ppn":2,"hcas":2,"msg":64}` + strings.Repeat(" ", maxQueryBytes), "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseQuery([]byte(tc.body)); err == nil {
				t.Fatalf("ParseQuery(%q) accepted", tc.body)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseQuery(%q): error %q does not mention %q", tc.body, err, tc.want)
			}
		})
	}
}

func TestParseQueryAccepts(t *testing.T) {
	q, err := ParseQuery([]byte(`{"nodes":4,"ppn":8,"hcas":2,"msg":65536,"layout":"block","health":[1,0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Query{Nodes: 4, PPN: 8, HCAs: 2, Layout: "block", Msg: 65536, Health: []float64{1, 0.5}}
	if !q.equal(want) {
		t.Fatalf("got %v, want %v", q, want)
	}
}

func TestCanonicalKey(t *testing.T) {
	key := func(q Query) string {
		t.Helper()
		_, k, err := q.Canonical()
		if err != nil {
			t.Fatalf("Canonical(%v): %v", q, err)
		}
		return k
	}
	base := Query{Nodes: 4, PPN: 8, HCAs: 2, Msg: 65536}

	// Layout defaults to block: explicit and implicit agree.
	explicit := base
	explicit.Layout = "block"
	if key(base) != key(explicit) {
		t.Error("implicit block layout keyed differently from explicit")
	}

	// A fully healthy vector collapses to the nil form.
	healthy := base
	healthy.Health = []float64{1, 1}
	if key(base) != key(healthy) {
		t.Error("all-healthy vector keyed differently from nil health")
	}

	// Health quantizes to 1/64ths: monitoring noise shares a key...
	a, b := base, base
	a.Health = []float64{1, 0.501}
	b.Health = []float64{1, 0.502}
	if key(a) != key(b) {
		t.Error("0.501 vs 0.502 health shattered the key")
	}
	// ...but a real difference does not.
	c := base
	c.Health = []float64{1, 0.25}
	if key(a) == key(c) {
		t.Error("0.5 vs 0.25 health collapsed into one key")
	}

	// A flat fabric collapses to the no-fabric form, and equivalent
	// spellings of one taper share a key.
	flat := base
	flat.Fabric = "flat"
	if key(base) != key(flat) {
		t.Error("explicit flat fabric keyed differently from no fabric")
	}
	ft, ftRatio := base, base
	ft.Fabric = "ft:arity=2,levels=2,over=2"
	ftRatio.Fabric = "ft:arity=2,levels=2,over=2:1"
	if key(ft) != key(ftRatio) {
		t.Error("over=2 vs over=2:1 shattered the fabric key")
	}
	if key(ft) == key(base) {
		t.Error("a 2:1 fat-tree keyed the same as the flat fabric")
	}

	// Every dimension distinguishes keys.
	for name, vary := range map[string]Query{
		"nodes":  {Nodes: 8, PPN: 8, HCAs: 2, Msg: 65536},
		"ppn":    {Nodes: 4, PPN: 4, HCAs: 2, Msg: 65536},
		"hcas":   {Nodes: 4, PPN: 8, HCAs: 1, Msg: 65536},
		"layout": {Nodes: 4, PPN: 8, HCAs: 2, Layout: "cyclic", Msg: 65536},
		"fabric": {Nodes: 4, PPN: 8, HCAs: 2, Fabric: "ft:arity=4,levels=2,over=2", Msg: 65536},
		"msg":    {Nodes: 4, PPN: 8, HCAs: 2, Msg: 32768},
	} {
		if key(base) == key(vary) {
			t.Errorf("varying %s did not change the key", name)
		}
	}
}

func TestCanonicalRejectsAllRailsDown(t *testing.T) {
	q := Query{Nodes: 2, PPN: 2, HCAs: 2, Msg: 64, Health: []float64{0, 0.001}}
	// 0.001 quantizes to 0: every rail down, nothing can carry traffic.
	if _, _, err := q.Canonical(); err == nil {
		t.Fatal("Canonical accepted a health vector with every rail down")
	}
}
