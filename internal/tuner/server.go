package tuner

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// The HTTP surface. Three endpoints, all JSON:
//
//	POST /v1/schedule  body: Query JSON    -> Decision JSON
//	GET  /v1/stats                         -> Stats JSON
//	GET  /healthz                          -> "ok"
//
// /v1/schedule answers with the decision's canonical bytes and an
// X-Mhatuned-Cache header ("hit" or "miss") so clients — and the CI
// smoke test — can tell a warm answer from a cold one. Bodies are
// byte-identical either way.

// cacheHeader is the response header reporting hit/miss.
const cacheHeader = "X-Mhatuned-Cache"

// Handler serves the autotuner API for s.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		st := s.Stats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	mux.HandleFunc("/v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "use POST with a query body", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBytes+1))
		if err != nil {
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		q, err := ParseQuery(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := s.Decide(q)
		if err != nil {
			// The query was well-formed, so a failure here is a synthesis
			// failure — a server-side condition, not a client error.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if res.Hit {
			w.Header().Set(cacheHeader, "hit")
		} else {
			w.Header().Set(cacheHeader, "miss")
		}
		w.Write(res.Raw)
	})
	return mux
}
