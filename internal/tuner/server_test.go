package tuner

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mha/internal/sched"
)

func testServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Capacity: 8, Synth: sched.SynthOptions{Beam: 3, Rounds: 3}})
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(ts.Close)
	return s, ts
}

func TestServerHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestServerScheduleMissThenHit(t *testing.T) {
	_, ts := testServer(t)
	query := `{"nodes":2,"ppn":2,"hcas":2,"msg":4096}`

	post := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	cold, coldBody := post()
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold query: %d %s", cold.StatusCode, coldBody)
	}
	if h := cold.Header.Get(cacheHeader); h != "miss" {
		t.Errorf("cold %s = %q, want miss", cacheHeader, h)
	}
	warm, warmBody := post()
	if h := warm.Header.Get(cacheHeader); h != "hit" {
		t.Errorf("warm %s = %q, want hit", cacheHeader, h)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Error("warm body differs from cold body")
	}
	var d Decision
	if err := json.Unmarshal(warmBody, &d); err != nil {
		t.Fatalf("response is not a decision: %v", err)
	}
	if d.Source != "synth" || d.Key == "" {
		t.Errorf("decision source=%q key=%q", d.Source, d.Key)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"bad json", http.MethodPost, "/v1/schedule", "nope", http.StatusBadRequest},
		{"bad shape", http.MethodPost, "/v1/schedule", `{"nodes":0,"ppn":1,"hcas":1,"msg":1}`, http.StatusBadRequest},
		{"oversized", http.MethodPost, "/v1/schedule", `{"nodes":2,"ppn":2,"hcas":2,"msg":64}` + strings.Repeat(" ", maxQueryBytes), http.StatusBadRequest},
		{"get schedule", http.MethodGet, "/v1/schedule", "", http.StatusMethodNotAllowed},
		{"post stats", http.MethodPost, "/v1/stats", "{}", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

func TestServerStats(t *testing.T) {
	_, ts := testServer(t)
	query := `{"nodes":2,"ppn":2,"hcas":2,"msg":4096}`
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 2 || st.Misses != 1 || st.Synths != 1 || st.Entries != 1 {
		t.Errorf("stats hits=%d misses=%d synths=%d entries=%d, want 2/1/1/1",
			st.Hits, st.Misses, st.Synths, st.Entries)
	}
	if len(st.SynthLatency) != len(histBuckets)+1 {
		t.Errorf("latency histogram has %d buckets, want %d", len(st.SynthLatency), len(histBuckets)+1)
	}
	var total int64
	for _, b := range st.SynthLatency {
		total += b.Count
	}
	if total != st.Synths {
		t.Errorf("histogram totals %d observations for %d synths", total, st.Synths)
	}
}
