package tuner

import "time"

// Serving statistics. Counters are guarded by the Service mutex; the
// /v1/stats handler serves a Stats snapshot, whose struct-ordered JSON
// keeps the wire form deterministic for a given state.

// histBuckets are the synthesis-latency histogram's upper bounds in
// microseconds: 100us doubling to ~52s, plus an implicit overflow
// bucket. Cold syntheses land across this range depending on shape.
var histBuckets = func() []float64 {
	out := make([]float64, 20)
	b := 100.0
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}()

// histogram accumulates synthesis latencies.
type histogram struct {
	counts  []int64 // len(histBuckets)+1, last = overflow
	count   int64
	totalUS float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(histBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	i := 0
	for i < len(histBuckets) && us > histBuckets[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.totalUS += us
}

// HistogramBucket is one bucket of the latency histogram snapshot.
type HistogramBucket struct {
	// LeUS is the bucket's inclusive upper bound in microseconds; the
	// overflow bucket reports 0 and is last.
	LeUS  float64 `json:"le_us"`
	Count int64   `json:"count"`
}

// Stats is one point-in-time snapshot of the service counters.
type Stats struct {
	// Hits/Misses/Shared classify Decide calls: cache hit, synthesis
	// miss, and a miss that piggybacked on another caller's in-flight
	// synthesis of the same key (singleflight deduplication).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Shared int64 `json:"shared"`
	// Errors counts Decide calls that failed (invalid query or failed
	// synthesis).
	Errors int64 `json:"errors"`
	// Synths is the number of syntheses actually run; with singleflight
	// it equals Misses that reached the synthesizer.
	Synths int64 `json:"synths"`
	// Inflight is the number of syntheses running right now.
	Inflight int `json:"inflight"`
	// Entries/Capacity/Evictions describe the LRU.
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Evictions int64 `json:"evictions"`
	// WarmStart counts entries preloaded at startup (warm-start table or
	// a persisted cache file).
	WarmStart int `json:"warm_start"`
	// SynthCount/SynthTotalUS/SynthLatency summarize synthesis wall
	// latency: the per-key cost of a cold miss.
	SynthTotalUS float64           `json:"synth_total_us"`
	SynthLatency []HistogramBucket `json:"synth_latency"`
	// HitRate is Hits / (Hits + Misses + Shared), 0 when idle.
	HitRate float64 `json:"hit_rate"`
}
