// Package tuner is schedule synthesis as a service: the engine of the
// mhatuned daemon. It answers "best allgather schedule for this machine
// state" queries — (nodes, ppn, rails, layout, message size, rail
// health) — by composing the repo's existing pieces into a serving path:
//
//   - the query is canonicalized and hashed into a cache key
//     (query.go): layout defaulted, health quantized to 1/64ths, so
//     equivalent machine states share one key;
//   - an LRU cache of past decisions answers warm queries in a map
//     lookup plus a list splice — the ~10^5+ decisions/sec path the
//     tier-1 throughput probe measures (cache.go);
//   - a cold miss runs the internal/sched beam synthesizer, health-
//     aware, with the alpha-beta analyzer pricing candidates and an
//     analytic margin pruning the simulation pass when the model is
//     unambiguous (tuner.go, internal/sched);
//   - concurrent misses on one key are deduplicated: exactly one
//     synthesis runs, everyone waits for it (singleflight, below);
//   - the cache persists to JSON and fully re-verifies on load, and a
//     warm-start table (the paper's Thor configurations, warmstart.go)
//     or a measured mhatune table (import.go) preloads it.
//
// The HTTP surface (server.go) exposes /v1/schedule, /v1/stats and
// /healthz; loadgen.go drives it with synthetic traffic for the
// benchmark. Everything is stdlib-only and deterministic where it
// matters: the same query sequence yields byte-identical decisions,
// cache files, and eviction orders.
package tuner

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/sched"
	"mha/internal/topology"
)

// Config configures a Service.
type Config struct {
	// Params is the cost-model calibration; nil means netmodel.Thor().
	Params *netmodel.Params
	// Capacity is the LRU entry limit (default 512).
	Capacity int
	// Synth tunes the schedule search. Beam/Rounds default as in
	// internal/sched; PruneMargin defaults to 0.25 (skip the simulation
	// pass when the analytic winner leads by >25%) — set it negative to
	// always simulate.
	Synth sched.SynthOptions
}

// DefaultPruneMargin is the analytic-pruning margin used when
// Config.Synth.PruneMargin is zero.
const DefaultPruneMargin = 0.25

// Result is one Decide outcome.
type Result struct {
	// Decision is the served decision.
	Decision *Decision
	// Raw is the decision's canonical wire form — for the same key it is
	// byte-identical whether the decision was just synthesized, read
	// from the cache, or restored from a persisted cache file.
	Raw []byte
	// Hit reports whether the answer came from the cache.
	Hit bool
}

// call is one in-flight synthesis other callers of the same key wait on.
type call struct {
	done chan struct{}
	dec  *Decision
	raw  []byte
	err  error
}

// Service is the autotuner: cache + singleflight + synthesizer.
type Service struct {
	prm   *netmodel.Params
	synth sched.SynthOptions

	mu        sync.Mutex
	cache     *lruCache
	flight    map[string]*call
	hist      *histogram
	hits      int64
	misses    int64
	shared    int64
	errors    int64
	synths    int64
	warmStart int
}

// New builds a Service.
func New(cfg Config) *Service {
	if cfg.Params == nil {
		cfg.Params = netmodel.Thor()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.Synth.PruneMargin == 0 {
		cfg.Synth.PruneMargin = DefaultPruneMargin
	} else if cfg.Synth.PruneMargin < 0 {
		cfg.Synth.PruneMargin = 0
	}
	return &Service{
		prm:    cfg.Params,
		synth:  cfg.Synth,
		cache:  newLRU(cfg.Capacity),
		flight: make(map[string]*call),
		hist:   newHistogram(),
	}
}

// Params returns the service's cost-model calibration.
func (s *Service) Params() *netmodel.Params { return s.prm }

// Decide answers one query: canonicalize, consult the cache, and on a
// miss run (or join) the one synthesis for that key.
func (s *Service) Decide(q Query) (Result, error) {
	cq, key, err := q.Canonical()
	if err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return Result{}, err
	}

	s.mu.Lock()
	if e := s.cache.get(key); e != nil {
		s.hits++
		s.mu.Unlock()
		return Result{Decision: e.dec, Raw: e.raw, Hit: true}, nil
	}
	if c, ok := s.flight[key]; ok {
		s.shared++
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return Result{}, c.err
		}
		return Result{Decision: c.dec, Raw: c.raw}, nil
	}
	c := &call{done: make(chan struct{})}
	s.flight[key] = c
	s.misses++
	s.mu.Unlock()

	start := time.Now()
	c.dec, c.raw, c.err = s.synthesize(cq, key)
	lat := time.Since(start)

	s.mu.Lock()
	delete(s.flight, key)
	s.synths++
	if c.err == nil {
		s.cache.put(&cacheEntry{key: key, dec: c.dec, raw: c.raw})
		s.hist.observe(lat)
	} else {
		s.errors++
	}
	s.mu.Unlock()
	close(c.done)

	if c.err != nil {
		return Result{}, c.err
	}
	return Result{Decision: c.dec, Raw: c.raw}, nil
}

// synthesize runs the health-aware schedule search for one canonical
// query and wraps the winner as a Decision.
func (s *Service) synthesize(cq Query, key string) (*Decision, []byte, error) {
	opt := s.synth
	opt.Health = cq.Health
	res, err := sched.Synthesize(cq.Cluster(), s.prm, cq.Msg, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("tuner: synthesis for %v: %v", cq, err)
	}
	// Served schedules always pass the analyzer's invariants; Synthesize
	// guarantees this structurally, the re-check makes it a contract.
	if _, err := sched.AnalyzeHealth(res.Best.Sched, s.prm, cq.Health); err != nil {
		return nil, nil, fmt.Errorf("tuner: synthesized schedule for %v fails invariants: %v", cq, err)
	}
	js, err := res.Best.Sched.JSON()
	if err != nil {
		return nil, nil, err
	}
	dec := &Decision{
		Key:         key,
		Query:       cq,
		Name:        res.Best.Name,
		CostUS:      res.Best.Cost.Micros(),
		MakespanUS:  res.Best.Makespan.Micros(),
		PredictedUS: s.predictUS(cq),
		Pruned:      res.Pruned,
		Source:      "synth",
		Schedule:    json.RawMessage(js),
	}
	raw, err := dec.Encode()
	if err != nil {
		return nil, nil, err
	}
	return dec, raw, nil
}

// predictUS evaluates the paper's closed-form Section-4 model for the
// query's shape: the analytic reference number recorded alongside the
// searched pick.
func (s *Service) predictUS(cq Query) float64 { return predictQueryUS(s.prm, cq) }

//lint:pure the recorded analytic reference must replay bit-identically
func predictQueryUS(prm *netmodel.Params, cq Query) float64 {
	topo := cq.Cluster()
	m := perfmodel.New(prm, topo)
	switch {
	case topo.Nodes == 1:
		return m.MHAIntra(cq.Msg).Micros()
	case topo.Layout == topology.Block:
		ring := m.MHAInterRing(cq.Msg)
		if topo.Nodes&(topo.Nodes-1) == 0 {
			if rd := m.MHAInterRD(cq.Msg); rd < ring {
				return rd.Micros()
			}
		}
		return ring.Micros()
	default:
		return m.FlatRing(cq.Msg).Micros()
	}
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Hits:         s.hits,
		Misses:       s.misses,
		Shared:       s.shared,
		Errors:       s.errors,
		Synths:       s.synths,
		Inflight:     len(s.flight),
		Entries:      s.cache.len(),
		Capacity:     s.cache.cap,
		Evictions:    s.cache.evictions,
		WarmStart:    s.warmStart,
		SynthTotalUS: s.hist.totalUS,
	}
	for i, le := range histBuckets {
		st.SynthLatency = append(st.SynthLatency, HistogramBucket{LeUS: le, Count: s.hist.counts[i]})
	}
	st.SynthLatency = append(st.SynthLatency, HistogramBucket{LeUS: 0, Count: s.hist.counts[len(histBuckets)]})
	if total := s.hits + s.misses + s.shared; total > 0 {
		st.HitRate = float64(s.hits) / float64(total)
	}
	return st
}

// SynthCount reports how many syntheses have run — the counter the
// singleflight race-stress test asserts on.
func (s *Service) SynthCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synths
}

// CachedKeys lists the cached keys, most recently used first — the
// LRU-order observable the determinism test locks down.
func (s *Service) CachedKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.keys()
}

// SaveCache writes the cache in the persistence format.
func (s *Service) SaveCache(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.save(w)
}

// LoadCache restores a persisted cache, re-verifying every entry, and
// counts the restored entries as warm-start entries.
func (s *Service) LoadCache(r io.Reader) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.cache.load(r, s.prm)
	s.warmStart += n
	return n, err
}
