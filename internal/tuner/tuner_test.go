package tuner

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mha/internal/sched"
)

// testService keeps the search small so cold syntheses stay fast.
func testService(capacity int) *Service {
	return New(Config{Capacity: capacity, Synth: sched.SynthOptions{Beam: 3, Rounds: 3}})
}

func TestDecideColdThenWarm(t *testing.T) {
	s := testService(8)
	q := Query{Nodes: 2, PPN: 2, HCAs: 2, Msg: 4096}

	cold, err := s.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit {
		t.Error("first Decide reported a cache hit")
	}
	if cold.Decision.Source != "synth" {
		t.Errorf("source %q, want synth", cold.Decision.Source)
	}
	if cold.Decision.CostUS <= 0 || cold.Decision.PredictedUS <= 0 {
		t.Errorf("non-positive cost/prediction: %v / %v", cold.Decision.CostUS, cold.Decision.PredictedUS)
	}

	warm, err := s.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit {
		t.Error("second Decide missed the cache")
	}
	if !bytes.Equal(cold.Raw, warm.Raw) {
		t.Error("warm response bytes differ from the cold synthesis")
	}

	// Every served decision re-verifies: key, canonical form, schedule
	// invariants.
	if _, err := DecodeDecision(warm.Raw, s.Params()); err != nil {
		t.Errorf("served decision fails re-verification: %v", err)
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Synths != 1 || st.Entries != 1 {
		t.Errorf("stats hits=%d misses=%d synths=%d entries=%d, want 1/1/1/1",
			st.Hits, st.Misses, st.Synths, st.Entries)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate %v, want 0.5", st.HitRate)
	}
}

// TestDifferentialCacheVsFresh is the acceptance differential: a cache
// hit serves bytes identical to what a cold synthesis of the same key
// produces in a brand-new service.
func TestDifferentialCacheVsFresh(t *testing.T) {
	queries := []Query{
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 4096},
		{Nodes: 2, PPN: 4, HCAs: 2, Msg: 65536, Health: []float64{1, 0.5}},
		{Nodes: 1, PPN: 4, HCAs: 2, Msg: 16384},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 65536, Layout: "cyclic"},
	}
	cached := testService(8)
	for _, q := range queries {
		if _, err := cached.Decide(q); err != nil {
			t.Fatalf("%v: %v", q, err)
		}
	}
	for _, q := range queries {
		hit, err := cached.Decide(q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if !hit.Hit {
			t.Fatalf("%v: expected a cache hit", q)
		}
		fresh := testService(8)
		cold, err := fresh.Decide(q)
		if err != nil {
			t.Fatalf("%v fresh: %v", q, err)
		}
		if !bytes.Equal(hit.Raw, cold.Raw) {
			t.Errorf("%v: cache-hit bytes differ from a fresh cold synthesis", q)
		}
		if _, err := DecodeDecision(hit.Raw, cached.Params()); err != nil {
			t.Errorf("%v: served decision fails invariants: %v", q, err)
		}
	}
}

// TestSingleflightBurst fires one identical query from many goroutines
// at once: exactly one synthesis runs, every caller gets the same bytes.
func TestSingleflightBurst(t *testing.T) {
	s := testService(8)
	q := Query{Nodes: 2, PPN: 4, HCAs: 2, Msg: 32768}
	const G = 32

	var (
		wg      sync.WaitGroup
		release = make(chan struct{})
		raws    = make([][]byte, G)
		errs    = make([]error, G)
	)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-release
			res, err := s.Decide(q)
			if err != nil {
				errs[g] = err
				return
			}
			raws[g] = res.Raw
		}(g)
	}
	close(release)
	wg.Wait()

	for g := 0; g < G; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !bytes.Equal(raws[g], raws[0]) {
			t.Fatalf("goroutine %d got different bytes", g)
		}
	}
	if n := s.SynthCount(); n != 1 {
		t.Errorf("burst of %d identical queries ran %d syntheses, want 1", G, n)
	}
	st := s.Stats()
	if got := st.Hits + st.Misses + st.Shared; got != G {
		t.Errorf("hits+misses+shared = %d, want %d", got, G)
	}
}

// TestRaceStress overlaps hit, miss, and shared-flight traffic over a
// pool of distinct keys. Capacity exceeds the key count during the
// concurrent phase, so singleflight must yield exactly one synthesis per
// distinct key — the synth counter is the assertion. (Run under -race in
// CI.)
func TestRaceStress(t *testing.T) {
	const (
		keys   = 6
		G      = 12
		rounds = 4
	)
	s := testService(keys + 2)
	pool := make([]Query, keys)
	for i := range pool {
		pool[i] = Query{Nodes: 2, PPN: 2, HCAs: 2, Msg: 1024 << i}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Different goroutines walk the pool from different offsets
				// so hits, misses, and in-flight joins interleave.
				for i := 0; i < keys; i++ {
					q := pool[(g+i)%keys]
					res, err := s.Decide(q)
					if err != nil {
						errCh <- fmt.Errorf("worker %d: %v", g, err)
						return
					}
					if _, wantKey, _ := q.Canonical(); res.Decision.Key != wantKey {
						errCh <- fmt.Errorf("worker %d: wrong decision for %v", g, q)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := s.SynthCount(); n != keys {
		t.Errorf("%d distinct keys synthesized %d times, want exactly %d", keys, n, keys)
	}
	st := s.Stats()
	if st.Entries != keys {
		t.Errorf("cache holds %d entries, want %d", st.Entries, keys)
	}
	if st.Evictions != 0 {
		t.Errorf("unexpected evictions: %d", st.Evictions)
	}
}

// TestConcurrentEviction hammers a capacity-2 cache with 4 keys: every
// response must still verify, and the cache must end at capacity. (The
// synth count is necessarily > distinct keys here — eviction forces
// re-synthesis — so the exact-count assertion lives in TestRaceStress.)
func TestConcurrentEviction(t *testing.T) {
	s := testService(2)
	pool := []Query{
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 1024},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 2048},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 4096},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 8192},
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := s.Decide(pool[(g+i)%len(pool)]); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Entries != 2 {
		t.Errorf("cache holds %d entries, want capacity 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under 4 keys x capacity 2")
	}
	if n := s.SynthCount(); n < 4 {
		t.Errorf("synth count %d < 4 distinct keys", n)
	}
}

// TestDeterminism replays one query sequence through two fresh services:
// the LRU eviction order and the persisted cache must match byte for
// byte.
func TestDeterminism(t *testing.T) {
	seq := []Query{
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 1024},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 2048},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 4096},
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 1024}, // re-hit: promotes 1024
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 8192}, // evicts 2048
		{Nodes: 2, PPN: 2, HCAs: 2, Msg: 16384},
	}
	run := func() ([]string, []byte, Stats) {
		s := testService(3)
		for _, q := range seq {
			if _, err := s.Decide(q); err != nil {
				t.Fatalf("%v: %v", q, err)
			}
		}
		var buf bytes.Buffer
		if err := s.SaveCache(&buf); err != nil {
			t.Fatal(err)
		}
		return s.CachedKeys(), buf.Bytes(), s.Stats()
	}

	keys1, file1, st1 := run()
	keys2, file2, _ := run()
	if !reflect.DeepEqual(keys1, keys2) {
		t.Errorf("LRU order differs across runs:\n%v\n%v", keys1, keys2)
	}
	if !bytes.Equal(file1, file2) {
		t.Error("persisted cache differs across runs")
	}
	if len(keys1) != 3 {
		t.Fatalf("cache holds %d keys, want 3", len(keys1))
	}
	if st1.Evictions != 2 {
		t.Errorf("evictions %d, want 2", st1.Evictions)
	}
	// The promoted 1024-byte query must have outlived the eviction of
	// 2048 and 4096.
	_, k1024, _ := seq[0].Canonical()
	_, k2048, _ := seq[1].Canonical()
	found := false
	for _, k := range keys1 {
		if k == k2048 {
			t.Error("2048-byte entry survived; LRU order wrong")
		}
		if k == k1024 {
			found = true
		}
	}
	if !found {
		t.Error("promoted 1024-byte entry was evicted; LRU order wrong")
	}

	// Round trip: load the file into a fresh service, recency order and
	// re-saved bytes must be identical, and warm queries must serve the
	// same bytes as the original synthesis.
	s := testService(3)
	n, err := s.LoadCache(bytes.NewReader(file1))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d entries, want 3", n)
	}
	if got := s.CachedKeys(); !reflect.DeepEqual(got, keys1) {
		t.Errorf("loaded LRU order differs:\n%v\n%v", got, keys1)
	}
	var buf bytes.Buffer
	if err := s.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), file1) {
		t.Error("save-load-save round trip not byte-stable")
	}
	res, err := s.Decide(seq[len(seq)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Error("restored cache missed a persisted key")
	}
	fresh := testService(3)
	cold, err := fresh.Decide(seq[len(seq)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Raw, cold.Raw) {
		t.Error("restored-cache response differs from a fresh synthesis")
	}
	if st := s.Stats(); st.WarmStart != 3 {
		t.Errorf("warm-start count %d, want 3", st.WarmStart)
	}
}

func TestLoadCacheRejectsCorrupt(t *testing.T) {
	s := testService(4)
	if _, err := s.Decide(Query{Nodes: 2, PPN: 2, HCAs: 2, Msg: 4096}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveCache(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"not json":      "what cache",
		"wrong version": strings.Replace(good, `"version": 1`, `"version": 99`, 1),
		"tampered key":  strings.Replace(good, `"key": "`, `"key": "0000`, 1),
		// Changing the message size inside the decision breaks both the
		// key derivation and the schedule match. (The persist encoder
		// indents the embedded decision, hence the spaced form.)
		"tampered query": strings.Replace(good, `"msg": 4096`, `"msg": 8192`, 1),
	}
	for name, text := range cases {
		t.Run(name, func(t *testing.T) {
			fresh := testService(4)
			if _, err := fresh.LoadCache(strings.NewReader(text)); err == nil {
				t.Fatal("corrupt cache file loaded cleanly")
			}
		})
	}
}

func TestWarmStartAndLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-start synthesis is seconds of work; skipped in -short")
	}
	s := New(Config{Capacity: 64, Synth: sched.SynthOptions{Beam: 3, Rounds: 3}})
	n, err := WarmStart(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(PaperQueries()); n != want {
		t.Fatalf("warm-started %d entries, want %d", n, want)
	}
	if st := s.Stats(); st.WarmStart != n || st.Entries != n {
		t.Fatalf("stats warm=%d entries=%d, want %d", st.WarmStart, st.Entries, n)
	}

	// With the cache warm, the load generator should see only hits.
	rep, err := RunLoad(s, LoadOptions{Workers: 4, Requests: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits != int64(rep.Requests) {
		t.Errorf("warm load saw %d hits out of %d requests", rep.Hits, rep.Requests)
	}
	if rep.PerSec <= 0 {
		t.Errorf("non-positive throughput %v", rep.PerSec)
	}
	t.Logf("warm load: %v", rep)
}
