package tuner

// The warm-start table. A fresh daemon with an empty cache pays a cold
// synthesis per distinct query; pre-answering the configurations the
// paper actually measured (dual-rail Thor nodes, power-of-two node
// counts, the latency/bandwidth ends of the message-size sweep) means
// the common shapes are warm from the first request.

// PaperQueries lists the warm-start shapes: the paper's dual-rail Thor
// configurations at small, medium, and large per-rank message sizes.
func PaperQueries() []Query {
	shapes := []struct{ nodes, ppn int }{
		{2, 8},
		{4, 8},
		{8, 16},
	}
	msgs := []int{4 << 10, 64 << 10, 1 << 20}
	var out []Query
	for _, sh := range shapes {
		for _, msg := range msgs {
			out = append(out, Query{Nodes: sh.nodes, PPN: sh.ppn, HCAs: 2, Msg: msg})
		}
	}
	return out
}

// WarmStart synthesizes the warm-start table into s's cache and reports
// how many entries it added.
func WarmStart(s *Service) (int, error) {
	n := 0
	for _, q := range PaperQueries() {
		if _, err := s.Decide(q); err != nil {
			return n, err
		}
		n++
	}
	s.mu.Lock()
	s.warmStart += n
	s.mu.Unlock()
	return n, nil
}
