package verify

import (
	"fmt"
	"io"
	"math/rand"

	"mha/internal/fabric"
	"mha/internal/faults"
	"mha/internal/sim"
	"mha/internal/topology"
)

// Options tunes a verification campaign. The zero value is sensible.
type Options struct {
	// Algs restricts the campaign to these registered names; nil means all.
	Algs []string
	// MaxRanks caps Nodes*PPN per scenario (default 48), bounding both
	// run time and the n^2*m bytes the oracle materializes.
	MaxRanks int
	// ShrinkBudget caps candidate evaluations per failure (default 150).
	ShrinkBudget int
	// NoShrink reports failures unminimized.
	NoShrink bool
	// Log, when non-nil, receives one line per scenario as it runs.
	Log io.Writer
}

// Failure is one scenario the harness rejected, with its minimized form.
type Failure struct {
	// Scenario is the originally generated failing scenario.
	Scenario Scenario
	// Shrunk is the minimized still-failing scenario (== Scenario when
	// shrinking is disabled or found nothing smaller).
	Shrunk Scenario
	// Violations are the shrunk scenario's violations.
	Violations []Violation
}

// Report summarizes a campaign.
type Report struct {
	// Scenarios is the number generated; PerAlg counts them by algorithm.
	Scenarios int
	PerAlg    map[string]int
	// Checks counts scenario evaluations including shrink candidates
	// (each evaluation is two simulation runs, for the determinism cross-
	// check).
	Checks int
	// Failures holds every failing scenario, shrunk and replayable.
	Failures []Failure
}

// Campaign generates and checks n random scenarios derived from seed. The
// same (n, seed, options) always yields the same scenarios. It returns an
// error only for unusable options; scenario failures land in the report.
func Campaign(n int, seed int64, opt Options) (*Report, error) {
	algs := Algorithms()
	if len(opt.Algs) > 0 {
		algs = algs[:0:0]
		for _, name := range opt.Algs {
			a, ok := ByName(name)
			if !ok {
				return nil, fmt.Errorf("verify: unknown algorithm %q", name)
			}
			algs = append(algs, a)
		}
	}
	if opt.MaxRanks <= 0 {
		opt.MaxRanks = 48
	}
	if opt.ShrinkBudget <= 0 {
		opt.ShrinkBudget = 150
	}
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{PerAlg: map[string]int{}}
	for i := 0; i < n; i++ {
		sc := Generate(rng, algs, opt.MaxRanks)
		rep.Scenarios++
		rep.PerAlg[sc.Alg]++
		rep.Checks++
		vs := Check(sc)
		if len(vs) == 0 {
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "ok   %s\n", sc.Spec())
			}
			continue
		}
		f := Failure{Scenario: sc, Shrunk: sc, Violations: vs}
		if !opt.NoShrink {
			// Shrink reports the kept scenario's violations itself, so the
			// documented "candidate evaluations per failure" budget is
			// exact: no trailing re-Check of the shrunk scenario.
			shrunk, svs, used := Shrink(sc, vs, opt.ShrinkBudget)
			rep.Checks += used
			f.Shrunk = shrunk
			f.Violations = svs
		}
		rep.Failures = append(rep.Failures, f)
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "FAIL %s\n  shrunk to: %s\n", sc.Spec(), f.Shrunk.Spec())
			for _, v := range f.Violations {
				fmt.Fprintf(opt.Log, "  %s\n", v)
			}
		}
	}
	return rep, nil
}

// Generate draws one scenario. Shapes are biased small (runs stay fast and
// shrunk repros stay readable) but cover every adversarial axis: odd and
// prime ppn, zero-byte and non-divisible messages, cyclic layouts where
// the algorithm's contract allows them, NUMA sockets, jitter, random fault
// schedules, and the health-blind transport baseline.
func Generate(rng *rand.Rand, algs []Algorithm, maxRanks int) Scenario {
	alg := algs[rng.Intn(len(algs))]
	sc := Scenario{Alg: alg.Name}

	nodeChoices := []int{1, 2, 2, 3, 4, 4, 5, 6, 8}
	ppnChoices := []int{1, 2, 2, 3, 4, 4, 5, 6, 8}
	if alg.EvenPPN {
		ppnChoices = []int{2, 2, 4, 4, 6, 8}
	}
	sc.Nodes = nodeChoices[rng.Intn(len(nodeChoices))]
	if alg.SingleNode {
		sc.Nodes = 1
	}
	sc.PPN = ppnChoices[rng.Intn(len(ppnChoices))]
	for sc.Nodes*sc.PPN > maxRanks {
		if sc.Nodes > 1 {
			sc.Nodes--
		} else if alg.EvenPPN {
			sc.PPN -= 2
		} else {
			sc.PPN--
		}
	}
	hcaChoices := []int{1, 2, 2, 3, 4}
	sc.HCAs = hcaChoices[rng.Intn(len(hcaChoices))]
	if sc.PPN%2 == 0 && rng.Float64() < 0.2 {
		sc.Sockets = 2
	}
	sc.Layout = topology.Block
	if !(alg.BlockOnly && sc.Nodes > 1) && rng.Float64() < 0.3 {
		sc.Layout = topology.Cyclic
	}

	msgChoices := []int{0, 1, 2, 3, 5, 7, 8, 13, 16, 31, 64, 100, 127,
		256, 257, 512, 1024, 2048, 4096, 8192, 65536}
	sc.Msg = msgChoices[rng.Intn(len(msgChoices))]
	// Bound the oracle's total footprint (every rank materializes n*m).
	if n := sc.Nodes * sc.PPN; n*n*sc.Msg > 32<<20 {
		sc.Msg = (32 << 20) / (n * n)
	}

	sc.Seed = 1 + rng.Int63n(1<<30)
	if rng.Float64() < 0.25 {
		sc.Jitter = 0.05
	}
	// Occasionally leave the flat fabric: an oversubscribed fat-tree, or a
	// dragonfly that tiles the node count exactly. The shared-link charging
	// only shifts virtual time, so the byte oracle and the determinism
	// cross-check apply unchanged.
	if r := rng.Float64(); r < 0.10 {
		arity := []int{2, 2, 4}[rng.Intn(3)]
		over := []string{"2", "4", "3:2"}[rng.Intn(3)]
		sc.Fabric = fmt.Sprintf("ft:arity=%d,levels=2,over=%s", arity, over)
		if s, err := fabric.ParseSpec(sc.Fabric); err == nil {
			sc.Fabric = s.String()
		}
	} else if r < 0.15 && sc.Nodes%2 == 0 && sc.Nodes >= 4 {
		sc.Fabric = fmt.Sprintf("dfly:groups=%d,routers=2,nodes=1", sc.Nodes/2)
		if s, err := fabric.ParseSpec(sc.Fabric); err == nil {
			sc.Fabric = s.String()
		}
	}
	// Heterogeneous nodes: mixed per-node rail counts and asymmetric rail
	// bandwidths, biased rare so the bulk of the campaign stays on the
	// paper's homogeneous clusters.
	if sc.HCAs > 1 && rng.Float64() < 0.12 {
		sc.NodeHCAs = make([]int, sc.Nodes)
		for i := range sc.NodeHCAs {
			sc.NodeHCAs[i] = 1 + rng.Intn(sc.HCAs)
		}
	}
	if sc.HCAs > 1 && rng.Float64() < 0.12 {
		sc.RailBW = make([]float64, sc.HCAs)
		for i := range sc.RailBW {
			sc.RailBW[i] = []float64{1, 0.5, 0.75, 2}[rng.Intn(4)]
		}
	}
	if rng.Float64() < 0.4 {
		sc.Faults = faults.Random(1+rng.Int63n(1<<30), sc.Nodes, sc.HCAs, sim.Time(2*sim.Millisecond))
		sc.Blind = rng.Float64() < 0.3
	}
	return sc
}
