package verify

import "mha/internal/cluster"

// The cluster-contended family runs the world allgather the way the
// multi-tenant scheduler runs jobs: contiguous rank groups execute
// overlapping sub-communicator allgathers (contending for rails and
// memory like co-scheduled tenants), leaders exchange windows, and each
// group broadcasts the assembled result. Registering it here puts the
// concurrent-communicator paths — runtime comm creation, per-comm
// epochs, interleaved rail traffic, teardown audits with multiple owners
// — under the full randomized campaign: byte-correctness against the
// oracle and trace-hash determinism, across layouts, NUMA shapes,
// jitter, and rail-fault schedules.
func init() {
	Register(Algorithm{Name: "cluster-contended-2", Run: cluster.Contended(2)})
	Register(Algorithm{Name: "cluster-contended-4", Run: cluster.Contended(4)})
}
