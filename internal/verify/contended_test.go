package verify

import (
	"testing"
)

// TestContendedRegistered: the multi-tenant scenario family is in the
// campaign's variant pool.
func TestContendedRegistered(t *testing.T) {
	for _, name := range []string{"cluster-contended-2", "cluster-contended-4"} {
		a, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if a.BlockOnly || a.SingleNode || a.EvenPPN {
			t.Fatalf("%s should carry no topology constraints: %+v", name, a)
		}
	}
}

// TestContendedScenarios drives the family through Check (two runs each:
// oracle, teardown audit, determinism cross-check) on shapes where the
// groups genuinely overlap — including under a rail fault, with jitter,
// at awkward sizes, and where group sizes are unequal.
func TestContendedScenarios(t *testing.T) {
	specs := []string{
		"alg=cluster-contended-2 nodes=2 ppn=2 hcas=2 msg=4096",
		"alg=cluster-contended-2 nodes=4 ppn=4 hcas=2 msg=65536",
		"alg=cluster-contended-4 nodes=4 ppn=4 hcas=2 msg=16384",
		"alg=cluster-contended-4 nodes=3 ppn=3 hcas=2 msg=257", // unequal groups, odd bytes
		"alg=cluster-contended-4 nodes=2 ppn=2 hcas=2 msg=0",   // more groups than... exactly size
		"alg=cluster-contended-2 nodes=2 ppn=4 hcas=2 layout=cyclic msg=1024",
		"alg=cluster-contended-2 nodes=2 ppn=4 hcas=2 msg=8192 jitter=0.05 seed=7",
		"alg=cluster-contended-2 nodes=4 ppn=2 hcas=2 msg=65536 " +
			"faults=down node=0 rail=1 until=80us; degrade node=2 rail=0 frac=0.5",
		"alg=cluster-contended-4 nodes=4 ppn=2 hcas=2 msg=32768 blind=1 " +
			"faults=down node=1 rail=0 until=60us",
	}
	for _, spec := range specs {
		sc, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		if vs := Check(sc); len(vs) > 0 {
			t.Errorf("%s failed:", spec)
			for _, v := range vs {
				t.Errorf("  %s", v)
			}
		}
	}
}
