package verify

// The fabric scenario families put the locality-aware allgathers on
// non-flat fabrics: every variant runs on an oversubscribed fat-tree
// ("fabric-ft-2:1") and a dragonfly ("fabric-dfly"), each in three
// environments — homogeneous block layout, heterogeneous cyclic layout
// (mixed 1/2-HCA nodes with asymmetric rails), and a rail fault. The
// campaign's full instrumentation applies: byte oracle, teardown audit,
// clock monotonicity and the determinism cross-check.

// localityVariants are the locality-aware allgathers under family test.
var localityVariants = []string{
	"locality-p2p", "locality-ring", "locality-bruck", "hier-bruck-ml",
}

// FabricFamilies returns the named fabric scenario families as replayable
// spec lines (parse with ParseSpec, judge with Check).
func FabricFamilies() map[string][]string {
	fams := map[string][]string{}
	envs := []string{
		// Homogeneous, block layout, oversubscribed links in the hot path.
		"nodes=4 ppn=2 hcas=2 msg=4096",
		// Mixed 1/2-HCA nodes, asymmetric rails, cyclic layout, odd bytes.
		"nodes=4 ppn=2 hcas=2 layout=cyclic msg=257 nodehcas=2/1/2/1 railbw=1/0.5",
		// A rail outage mid-run on a node feeding a shared trunk.
		"nodes=4 ppn=2 hcas=2 msg=32768 faults=down node=0 rail=1 until=80us",
	}
	for _, alg := range localityVariants {
		for _, env := range envs {
			fams["fabric-ft-2:1"] = append(fams["fabric-ft-2:1"],
				"alg="+alg+" "+withFabric(env, "ft:arity=2,levels=2,over=2"))
			fams["fabric-dfly"] = append(fams["fabric-dfly"],
				"alg="+alg+" "+withFabric(env, "dfly:groups=2,routers=2,nodes=1,global=2"))
		}
	}
	return fams
}

// withFabric splices a fabric= field into an env string, keeping faults=
// (which must stay last) at the end.
func withFabric(env, spec string) string {
	const faultsKey = " faults="
	for i := 0; i+len(faultsKey) <= len(env); i++ {
		if env[i:i+len(faultsKey)] == faultsKey {
			return env[:i] + " fabric=" + spec + env[i:]
		}
	}
	return env + " fabric=" + spec
}
