package verify

import (
	"strings"
	"testing"
)

// TestLocalityVariantsRegistered: the locality family joined the campaign
// pool through the collectives registration table, unconstrained (they
// derive node groups from the communicator, so any layout is fine).
func TestLocalityVariantsRegistered(t *testing.T) {
	for _, name := range localityVariants {
		a, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if a.BlockOnly || a.SingleNode || a.EvenPPN {
			t.Fatalf("%s should carry no topology constraints: %+v", name, a)
		}
	}
}

// TestFabricFamilies drives both fabric families through Check: every
// locality variant, byte-exact, on oversubscribed fat-tree and dragonfly
// fabrics, homogeneous and heterogeneous, healthy and under a rail fault.
func TestFabricFamilies(t *testing.T) {
	fams := FabricFamilies()
	for _, fam := range []string{"fabric-ft-2:1", "fabric-dfly"} {
		specs := fams[fam]
		if len(specs) != 4*3 {
			t.Fatalf("%s: %d scenarios, want every locality variant x 3 envs", fam, len(specs))
		}
		for _, spec := range specs {
			sc, err := ParseSpec(spec)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", fam, spec, err)
			}
			if vs := Check(sc); len(vs) > 0 {
				t.Errorf("%s: %s failed:", fam, spec)
				for _, v := range vs {
					t.Errorf("  %s", v)
				}
			}
		}
	}
}

// TestFabricSpecRoundTrip: the new scenario fields survive the
// Spec/ParseSpec round trip, so shrunk fabric failures stay replayable.
func TestFabricSpecRoundTrip(t *testing.T) {
	specs := []string{
		"alg=locality-ring nodes=4 ppn=2 hcas=2 msg=64 fabric=ft:arity=2,levels=2,over=2",
		"alg=hier-bruck-ml nodes=4 ppn=2 hcas=2 layout=cyclic msg=257 " +
			"fabric=dfly:groups=2,routers=2,nodes=1,local=1,global=2 nodehcas=2/1/2/1 railbw=1/0.5",
		"alg=locality-bruck nodes=2 ppn=2 hcas=2 msg=8 nodehcas=1/2",
	}
	for _, spec := range specs {
		sc, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		again, err := ParseSpec(sc.Spec())
		if err != nil {
			t.Fatalf("reparse %q: %v", sc.Spec(), err)
		}
		if again.Spec() != sc.Spec() {
			t.Fatalf("spec not a fixed point:\n  %s\n  %s", sc.Spec(), again.Spec())
		}
		for _, want := range []string{"fabric=", "nodehcas="} {
			if !strings.Contains(sc.Spec(), want) && strings.Contains(spec, want) {
				t.Fatalf("spec %q lost %q", sc.Spec(), want)
			}
		}
	}
	// A flat fabric normalizes away instead of cluttering every spec line.
	sc, err := ParseSpec("alg=ring nodes=2 ppn=2 hcas=2 msg=8 fabric=flat")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sc.Spec(), "fabric=") {
		t.Fatalf("flat fabric should not render: %s", sc.Spec())
	}
	// Fabric specs that cannot host the cluster are spec errors.
	if _, err := ParseSpec("alg=ring nodes=6 ppn=1 hcas=1 msg=8 fabric=dfly:groups=2,routers=2,nodes=2"); err == nil {
		t.Fatal("dragonfly that cannot tile 6 nodes should be rejected")
	}
}
