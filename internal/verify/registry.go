// Package verify is the repo's randomized differential-verification
// harness: it generates adversarial collective scenarios (cluster shape,
// rank layout, message size, fault schedule, algorithm), runs each
// registered variant with real payloads against a directly-constructed
// oracle of the expected bytes, and audits the simulator's physics along
// the way (clock monotonicity, resource-busy conservation, drained
// mailboxes, determinism of the event timeline). Failing scenarios are
// greedily shrunk to a minimal one-line repro spec that cmd/mhaverify can
// replay.
package verify

import (
	"sort"

	"mha/internal/collectives"
	"mha/internal/compose"
	"mha/internal/core"
	"mha/internal/mpi"
	"mha/internal/sched"
	"mha/internal/topology"
)

// RunFn is one collective implementation under verification. Buffer
// shapes follow compose.Geometry for the algorithm's collective; for
// the allgather family that means send holds one contribution
// (identical length on every rank) and recv holds Size contributions
// ordered by world rank.
type RunFn func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf)

// Algorithm is one verifiable collective variant plus the topology
// constraints it documents. The constraints keep the generator honest:
// pairing a hierarchical algorithm with a cyclic layout would report
// oracle failures the algorithm's contract explicitly excludes.
type Algorithm struct {
	// Name identifies the variant in specs and reports.
	Name string
	// Coll is the collective contract the variant implements; the zero
	// value is allgather, which every hand-written variant predates.
	// It selects the buffer geometry and the byte oracle.
	Coll compose.Collective
	// Run executes the variant on the world communicator.
	Run RunFn
	// BlockOnly marks the hierarchical designs, which require the block
	// rank layout so node blocks are contiguous in the receive buffer
	// (see internal/collectives/twolevel.go). Single-node topologies are
	// exempt: with one node the two layouts coincide.
	BlockOnly bool
	// SingleNode marks intra-node-only variants (Nodes must be 1).
	SingleNode bool
	// EvenPPN marks variants needing an even processes-per-node count
	// (multi-leader with two leader groups).
	EvenPPN bool
}

// Supports reports whether the algorithm's contract covers the topology.
func (a Algorithm) Supports(c topology.Cluster) bool {
	if a.BlockOnly && c.Layout != topology.Block && c.Nodes > 1 {
		return false
	}
	if a.SingleNode && c.Nodes != 1 {
		return false
	}
	if a.EvenPPN && c.PPN%2 != 0 {
		return false
	}
	return true
}

// onComm adapts a communicator-based flat algorithm to a RunFn.
func onComm(fn func(*mpi.Proc, *mpi.Comm, mpi.Buf, mpi.Buf)) RunFn {
	return func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		fn(p, w.CommWorld(), send, recv)
	}
}

// registry is the built-in variant set plus any Register additions.
// The flat allgathers and the compose-derived collectives join through
// their registration tables in init below.
var registry = []Algorithm{
	{Name: "two-level", Run: collectives.KandallaAllgather, BlockOnly: true},
	{Name: "two-level-rd", Run: collectives.MamidalaAllgather, BlockOnly: true},
	{Name: "multi-leader", BlockOnly: true, EvenPPN: true,
		Run: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			collectives.MultiLeaderAllgather(p, w, send, recv, 2)
		}},
	{Name: "mha", Run: core.MHAAllgather, BlockOnly: true},
	{Name: "mha-ring", BlockOnly: true,
		Run: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			core.MHAInterAllgatherCfg(p, w, send, recv, core.InterConfig{LeaderAlg: core.ForceRing})
		}},
	{Name: "mha-rd", BlockOnly: true,
		Run: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			core.MHAInterAllgatherCfg(p, w, send, recv, core.InterConfig{LeaderAlg: core.ForceRD})
		}},
	{Name: "mha-seq", BlockOnly: true,
		Run: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			core.MHAInterAllgatherCfg(p, w, send, recv, core.InterConfig{NoOverlap: true})
		}},
	{Name: "mha-plain1", BlockOnly: true,
		Run: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
			core.MHAInterAllgatherCfg(p, w, send, recv, core.InterConfig{PlainPhase1: true})
		}},
	{Name: "mha-3level", Run: core.MHA3LevelAllgather, BlockOnly: true},
	{Name: "mha-intra", Run: onComm(core.MHAIntraAllgather), SingleNode: true},
	// Schedule-interpreter variants (internal/sched): the same designs
	// lowered to the explicit schedule IR and run by the interpreter, so
	// the campaign differentially checks the IR semantics against the
	// hand-written implementations above under the full scenario space.
	{Name: "sched-ring", Run: sched.Runner(sched.Ring)},
	{Name: "sched-rd", Run: sched.Runner(sched.RecursiveDoubling)},
	{Name: "sched-mha", BlockOnly: true,
		Run: sched.Runner(func(topo topology.Cluster, msg int) *sched.Schedule {
			return sched.TwoPhaseMHA(topo, nil, msg, sched.MHAOptions{Offload: sched.AutoOffload})
		})},
}

// The flat allgathers and the compose-derived variants register
// through their packages' single registration points, so an algorithm
// or composition added there automatically joins the campaign with its
// collective's geometry and oracle.
func init() {
	for _, a := range collectives.Allgathers() {
		registry = append(registry, Algorithm{Name: a.Name, Run: onComm(a.Run)})
	}
	for _, v := range compose.Variants() {
		registry = append(registry, Algorithm{
			Name: v.Name, Coll: v.Coll, Run: RunFn(v.Run), BlockOnly: v.BlockOnly,
		})
	}
}

// Algorithms returns the registered variants sorted by name.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves one registered variant.
func ByName(name string) (Algorithm, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}

// Register adds a variant (tests use it to prove the harness catches
// deliberately broken implementations). A duplicate name replaces the
// existing entry.
func Register(a Algorithm) {
	for i := range registry {
		if registry[i].Name == a.Name {
			registry[i] = a
			return
		}
	}
	registry = append(registry, a)
}
