package verify

import (
	"fmt"
	"sync"

	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/trace"
)

// Violation is one broken property of a scenario run.
type Violation struct {
	// Kind classifies the property: "spec" (unrunnable scenario), "run"
	// (deadlock or panic), "oracle" (wrong bytes), "invariant" (teardown
	// audit), "monotonic" (clock went backwards), "determinism" (two runs
	// of the same seed diverged).
	Kind string
	// Detail is a human-readable account.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// patByte is the oracle's expected byte i of rank r's contribution: a
// non-repeating pattern so block swaps, off-by-ones and stale bytes all
// produce visible mismatches.
func patByte(r, i int) byte { return byte(r*131 + i*7 + 3) }

// maxOracleReports caps per-run oracle output; one failing scenario can
// corrupt every block of every rank.
const maxOracleReports = 8

// runResult is one execution of a scenario.
type runResult struct {
	makespan   sim.Time
	hash       uint64
	violations []Violation
}

// runOnce executes the scenario with real payloads and full instrumentation:
// the differential oracle on every rank's receive buffer, the clock-advance
// watcher, and the teardown audit. Panics anywhere in the run (including
// world construction) become "run" violations.
func runOnce(sc Scenario) (res runResult) {
	defer func() {
		if r := recover(); r != nil {
			res.violations = append(res.violations,
				Violation{Kind: "run", Detail: fmt.Sprintf("panic: %v", r)})
		}
	}()
	alg, ok := ByName(sc.Alg)
	if !ok {
		return runResult{violations: []Violation{{Kind: "spec", Detail: "unknown algorithm " + sc.Alg}}}
	}
	rec := trace.New()
	w := mpi.New(mpi.Config{
		Topo: sc.Topo(), Params: sc.Params(), Tracer: rec,
		Seed: sc.Seed, Faults: sc.Faults, FaultBlind: sc.Blind,
	})

	// Clock monotonicity: the engine must only ever advance, and each
	// advance must leave from exactly where the previous one arrived.
	var clockBad []string
	var lastTo sim.Time
	w.Engine().SetClockWatcher(func(from, to sim.Time) {
		switch {
		case to <= from:
			if len(clockBad) < maxOracleReports {
				clockBad = append(clockBad, fmt.Sprintf("advance %v -> %v", from, to))
			}
		case from < lastTo:
			if len(clockBad) < maxOracleReports {
				clockBad = append(clockBad, fmt.Sprintf("advance from %v after reaching %v", from, lastTo))
			}
		}
		lastTo = to
	})

	n := sc.Topo().Size()
	m := sc.Msg
	var mu sync.Mutex
	var oracle []string
	report := func(s string) {
		mu.Lock()
		if len(oracle) < maxOracleReports {
			oracle = append(oracle, s)
		}
		mu.Unlock()
	}
	err := w.Run(func(p *mpi.Proc) {
		send := mpi.NewBuf(m)
		for i := range send.Data() {
			send.Data()[i] = patByte(p.Rank(), i)
		}
		recv := mpi.NewBuf(n * m)
		alg.Run(p, w, send, recv)
		for r := 0; r < n; r++ {
			blk := recv.Data()[r*m : (r+1)*m]
			for i, b := range blk {
				if b != patByte(r, i) {
					report(fmt.Sprintf("rank %d: block %d byte %d = %#02x, want %#02x",
						p.Rank(), r, i, b, patByte(r, i)))
					break
				}
			}
		}
		for i, b := range send.Data() {
			if b != patByte(p.Rank(), i) {
				report(fmt.Sprintf("rank %d: send buffer clobbered at byte %d", p.Rank(), i))
				break
			}
		}
	})
	if err != nil {
		res.violations = append(res.violations, Violation{Kind: "run", Detail: err.Error()})
	} else if terr := w.VerifyTeardown(); terr != nil {
		res.violations = append(res.violations, Violation{Kind: "invariant", Detail: terr.Error()})
	}
	for _, s := range clockBad {
		res.violations = append(res.violations, Violation{Kind: "monotonic", Detail: s})
	}
	for _, s := range oracle {
		res.violations = append(res.violations, Violation{Kind: "oracle", Detail: s})
	}
	res.makespan = w.Engine().Stats().Now
	res.hash = rec.Hash()
	return res
}

// Check verifies one scenario completely: it validates the spec, executes
// it twice, and returns every violation found — including a "determinism"
// violation when the two identically-seeded runs produce different event
// timelines or makespans. An empty slice means the scenario passed.
func Check(sc Scenario) []Violation {
	if err := sc.Validate(); err != nil {
		return []Violation{{Kind: "spec", Detail: err.Error()}}
	}
	r1 := runOnce(sc)
	r2 := runOnce(sc)
	out := r1.violations
	if r1.hash != r2.hash {
		out = append(out, Violation{Kind: "determinism",
			Detail: fmt.Sprintf("trace hash %#x vs %#x across identical runs", r1.hash, r2.hash)})
	} else if r1.makespan != r2.makespan {
		out = append(out, Violation{Kind: "determinism",
			Detail: fmt.Sprintf("makespan %v vs %v across identical runs", r1.makespan, r2.makespan)})
	}
	return out
}
