package verify

import (
	"fmt"
	"sync"

	"mha/internal/compose"
	"mha/internal/mpi"
	"mha/internal/sim"
	"mha/internal/trace"
)

// Violation is one broken property of a scenario run.
type Violation struct {
	// Kind classifies the property: "spec" (unrunnable scenario), "run"
	// (deadlock or panic), "oracle" (wrong bytes), "invariant" (teardown
	// audit), "monotonic" (clock went backwards), "determinism" (two runs
	// of the same seed diverged).
	Kind string
	// Detail is a human-readable account.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// patByte is the oracle's expected byte i of rank r's contribution: a
// non-repeating pattern so block swaps, off-by-ones and stale bytes all
// produce visible mismatches.
func patByte(r, i int) byte { return byte(r*131 + i*7 + 3) }

// sumByte is the ByteSum fold of every rank's contribution byte i —
// the reduction oracle. Wrapping byte addition is exactly commutative
// and associative, so the expected value is independent of fold order.
func sumByte(n, i int) byte {
	var s byte
	for r := 0; r < n; r++ {
		s += patByte(r, i)
	}
	return s
}

// expByte is the oracle for byte i of receive block blk at rank me
// under each collective's contract. Send buffers are always filled
// with the owner's patByte pattern over their Geometry length, so:
// allgather-family blocks are contributions verbatim, reduce-family
// slots are ByteSum folds, alltoall chunk (s -> me) is bytes
// [me*m, me*m+m) of s's pattern, and a gather's non-root receive
// buffer must stay untouched (all zero).
func expByte(coll compose.Collective, n, m, me, blk, i int) byte {
	switch coll {
	case compose.Allgather:
		return patByte(blk, i)
	case compose.ReduceScatter:
		return sumByte(n, me*m+i)
	case compose.Alltoall:
		return patByte(blk, me*m+i)
	case compose.Gather:
		if me != 0 {
			return 0
		}
		return patByte(blk, i)
	case compose.Scatter:
		return patByte(0, me*m+i)
	case compose.Allreduce:
		return sumByte(n, blk*m+i)
	case compose.Bcast:
		return patByte(0, i)
	default:
		panic("verify: no oracle for collective " + coll.String())
	}
}

// maxOracleReports caps per-run oracle output; one failing scenario can
// corrupt every block of every rank.
const maxOracleReports = 8

// RunResult is one execution of a scenario.
type RunResult struct {
	// Makespan is the virtual time the run finished at.
	Makespan sim.Time
	// Hash fingerprints the run's event timeline (for determinism checks).
	Hash uint64
	// Violations holds every broken property; empty means the run passed.
	Violations []Violation
}

// RunOnce executes the scenario with real payloads and full
// instrumentation: the differential oracle on every rank's receive
// buffer, the clock-advance watcher, and the teardown audit. Panics
// anywhere in the run (including world construction) become "run"
// violations. If install is non-nil it is called with the constructed
// world before any rank runs — internal/explore uses the hook to attach
// a sim.Scheduler to the engine, sharing this oracle across the
// randomized campaign and the exhaustive explorer.
func RunOnce(sc Scenario, install func(*mpi.World)) (res RunResult) {
	defer func() {
		if r := recover(); r != nil {
			res.Violations = append(res.Violations,
				Violation{Kind: "run", Detail: fmt.Sprintf("panic: %v", r)})
		}
	}()
	alg, ok := ByName(sc.Alg)
	if !ok {
		return RunResult{Violations: []Violation{{Kind: "spec", Detail: "unknown algorithm " + sc.Alg}}}
	}
	fspec, ferr := sc.FabricSpec()
	if ferr != nil {
		return RunResult{Violations: []Violation{{Kind: "spec", Detail: ferr.Error()}}}
	}
	rec := trace.New()
	w := mpi.New(mpi.Config{
		Topo: sc.Topo(), Params: sc.Params(), Tracer: rec,
		Seed: sc.Seed, Faults: sc.Faults, FaultBlind: sc.Blind,
		Fabric: fspec,
	})

	// Clock monotonicity: the engine must only ever advance, and each
	// advance must leave from exactly where the previous one arrived.
	var clockBad []string
	var lastTo sim.Time
	w.Engine().SetClockWatcher(func(from, to sim.Time) {
		switch {
		case to <= from:
			if len(clockBad) < maxOracleReports {
				clockBad = append(clockBad, fmt.Sprintf("advance %v -> %v", from, to))
			}
		case from < lastTo:
			if len(clockBad) < maxOracleReports {
				clockBad = append(clockBad, fmt.Sprintf("advance from %v after reaching %v", from, lastTo))
			}
		}
		lastTo = to
	})
	if install != nil {
		install(w)
	}

	n := sc.Topo().Size()
	m := sc.Msg
	var mu sync.Mutex
	var oracle []string
	report := func(s string) {
		mu.Lock()
		if len(oracle) < maxOracleReports {
			oracle = append(oracle, s)
		}
		mu.Unlock()
	}
	sendLen, recvLen := compose.Geometry(alg.Coll, n, m)
	err := w.Run(func(p *mpi.Proc) {
		send := mpi.NewBuf(sendLen)
		for i := range send.Data() {
			send.Data()[i] = patByte(p.Rank(), i)
		}
		recv := mpi.NewBuf(recvLen)
		alg.Run(p, w, send, recv)
		data := recv.Data()
		for blk := 0; m > 0 && blk*m < len(data); blk++ {
			for i := 0; i < m; i++ {
				b, want := data[blk*m+i], expByte(alg.Coll, n, m, p.Rank(), blk, i)
				if b != want {
					report(fmt.Sprintf("rank %d: block %d byte %d = %#02x, want %#02x",
						p.Rank(), blk, i, b, want))
					break
				}
			}
		}
		for i, b := range send.Data() {
			if b != patByte(p.Rank(), i) {
				report(fmt.Sprintf("rank %d: send buffer clobbered at byte %d", p.Rank(), i))
				break
			}
		}
	})
	if err != nil {
		res.Violations = append(res.Violations, Violation{Kind: "run", Detail: err.Error()})
	} else if terr := w.VerifyTeardown(); terr != nil {
		res.Violations = append(res.Violations, Violation{Kind: "invariant", Detail: terr.Error()})
	}
	for _, s := range clockBad {
		res.Violations = append(res.Violations, Violation{Kind: "monotonic", Detail: s})
	}
	for _, s := range oracle {
		res.Violations = append(res.Violations, Violation{Kind: "oracle", Detail: s})
	}
	res.Makespan = w.Engine().Stats().Now
	res.Hash = rec.Hash()
	return res
}

// Check verifies one scenario completely: it validates the spec, executes
// it twice, and returns every violation found — including a "determinism"
// violation when the two identically-seeded runs produce different event
// timelines or makespans. An empty slice means the scenario passed.
func Check(sc Scenario) []Violation {
	if err := sc.Validate(); err != nil {
		return []Violation{{Kind: "spec", Detail: err.Error()}}
	}
	r1 := RunOnce(sc, nil)
	r2 := RunOnce(sc, nil)
	out := r1.Violations
	if r1.Hash != r2.Hash {
		out = append(out, Violation{Kind: "determinism",
			Detail: fmt.Sprintf("trace hash %#x vs %#x across identical runs", r1.Hash, r2.Hash)})
	} else if r1.Makespan != r2.Makespan {
		out = append(out, Violation{Kind: "determinism",
			Detail: fmt.Sprintf("makespan %v vs %v across identical runs", r1.Makespan, r2.Makespan)})
	}
	return out
}
