package verify

import (
	"fmt"
	"strconv"
	"strings"

	"mha/internal/fabric"
	"mha/internal/faults"
	"mha/internal/netmodel"
	"mha/internal/topology"
)

// Scenario is one fully-specified verification run: a variant, a cluster,
// a payload, and the environment (jitter, faults, health-blindness). It
// round-trips through a one-line textual spec so a shrunk failure can be
// replayed with `mhaverify -repro`.
type Scenario struct {
	// Alg names a registered Algorithm.
	Alg string
	// Cluster shape.
	Nodes, PPN, HCAs, Sockets int
	// Layout is the rank-to-node mapping.
	Layout topology.Layout
	// Msg is the per-rank contribution in bytes (0 is legal).
	Msg int
	// Seed feeds the world's jitter RNG.
	Seed int64
	// Jitter is the OS/fabric noise amplitude (0 disables).
	Jitter float64
	// Blind runs the health-unaware transport baseline.
	Blind bool
	// Fabric is an internal/fabric spec ("" or "flat" means the default
	// flat fabric), putting the run's inter-node traffic on shared
	// fat-tree or dragonfly links.
	Fabric string
	// NodeHCAs, when non-empty, gives each node its own usable rail
	// count (mixed 1/2-HCA clusters); len must equal Nodes.
	NodeHCAs []int
	// RailBW, when non-empty, scales each rail's bandwidth (asymmetric
	// rails); len must equal HCAs.
	RailBW []float64
	// Faults degrades the rails over the run; nil means healthy.
	Faults *faults.Schedule
}

// Topo returns the scenario's cluster.
func (sc Scenario) Topo() topology.Cluster {
	return topology.Cluster{Nodes: sc.Nodes, PPN: sc.PPN, HCAs: sc.HCAs,
		Layout: sc.Layout, Sockets: sc.Sockets,
		NodeHCAs: sc.NodeHCAs, RailBW: sc.RailBW}
}

// FabricSpec parses the scenario's fabric field (nil when flat).
func (sc Scenario) FabricSpec() (*fabric.Spec, error) {
	if sc.Fabric == "" {
		return nil, nil
	}
	s, err := fabric.ParseSpec(sc.Fabric)
	if err != nil {
		return nil, err
	}
	if s.Kind == fabric.Flat {
		return nil, nil
	}
	return &s, nil
}

// Params returns the scenario's cost model: the Thor calibration (NUMA
// variant when the cluster has socket structure) with the scenario's
// jitter.
func (sc Scenario) Params() *netmodel.Params {
	var prm netmodel.Params
	if sc.Sockets > 1 {
		prm = *netmodel.NumaThor()
	} else {
		prm = *netmodel.Thor()
	}
	prm.Jitter = sc.Jitter
	return &prm
}

// Validate reports why the scenario is not runnable, or nil.
func (sc Scenario) Validate() error {
	alg, ok := ByName(sc.Alg)
	if !ok {
		return fmt.Errorf("verify: unknown algorithm %q", sc.Alg)
	}
	topo := sc.Topo()
	if err := topo.Validate(); err != nil {
		return err
	}
	if !alg.Supports(topo) {
		return fmt.Errorf("verify: %s does not support %v", sc.Alg, topo)
	}
	if sc.Msg < 0 {
		return fmt.Errorf("verify: negative message size %d", sc.Msg)
	}
	if sc.Jitter < 0 {
		return fmt.Errorf("verify: negative jitter %g", sc.Jitter)
	}
	if fs, err := sc.FabricSpec(); err != nil {
		return err
	} else if fs != nil {
		if err := fs.CheckNodes(sc.Nodes); err != nil {
			return err
		}
	}
	if sc.Faults.Len() > 0 {
		if err := sc.Faults.Check(sc.Nodes, sc.HCAs); err != nil {
			return err
		}
	}
	return nil
}

// Spec renders the scenario as the one-line format ParseSpec reads. The
// faults field is last and holds the schedule's own spec text with ';'
// joining lines, so the whole scenario stays a single shell-friendly line.
func (sc Scenario) Spec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s nodes=%d ppn=%d hcas=%d sockets=%d layout=%s msg=%d seed=%d jitter=%g blind=%d",
		sc.Alg, sc.Nodes, sc.PPN, sc.HCAs, sc.Sockets,
		strings.ToLower(sc.Layout.String()), sc.Msg, sc.Seed, sc.Jitter, b2i(sc.Blind))
	if sc.Fabric != "" && sc.Fabric != "flat" {
		fmt.Fprintf(&b, " fabric=%s", sc.Fabric)
	}
	if len(sc.NodeHCAs) > 0 {
		b.WriteString(" nodehcas=")
		b.WriteString(joinInts(sc.NodeHCAs))
	}
	if len(sc.RailBW) > 0 {
		b.WriteString(" railbw=")
		b.WriteString(joinFloats(sc.RailBW))
	}
	b.WriteString(" faults=")
	if sc.Faults.Len() > 0 {
		b.WriteString(strings.ReplaceAll(sc.Faults.String(), "\n", "; "))
	} else {
		b.WriteString("none")
	}
	return b.String()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// joinInts renders a "/"-separated int list (the nodehcas= value).
func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, "/")
}

// joinFloats renders a "/"-separated float list (the railbw= value).
func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.FormatFloat(x, 'g', -1, 64)
	}
	return strings.Join(parts, "/")
}

func splitInts(v string) ([]int, error) {
	parts := strings.Split(v, "/")
	out := make([]int, len(parts))
	for i, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

func splitFloats(v string) ([]float64, error) {
	parts := strings.Split(v, "/")
	out := make([]float64, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// ParseSpec reads a line produced by Spec (the inverse, modulo
// whitespace). Unknown keys are an error; every key except faults must
// appear at most once and has a sensible default (one node, one rank, one
// rail, block layout, empty message, healthy rails).
func ParseSpec(line string) (Scenario, error) {
	sc := Scenario{Nodes: 1, PPN: 1, HCAs: 1, Layout: topology.Block, Seed: 1}
	line = strings.TrimSpace(line)
	faultText := ""
	if i := strings.Index(line, "faults="); i >= 0 {
		faultText = strings.TrimSpace(line[i+len("faults="):])
		line = line[:i]
	}
	for _, field := range strings.Fields(line) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return sc, fmt.Errorf("verify: bad field %q (want key=value)", field)
		}
		var err error
		switch k {
		case "alg":
			sc.Alg = v
		case "nodes":
			sc.Nodes, err = strconv.Atoi(v)
		case "ppn":
			sc.PPN, err = strconv.Atoi(v)
		case "hcas":
			sc.HCAs, err = strconv.Atoi(v)
		case "sockets":
			sc.Sockets, err = strconv.Atoi(v)
		case "layout":
			switch v {
			case "block":
				sc.Layout = topology.Block
			case "cyclic":
				sc.Layout = topology.Cyclic
			default:
				err = fmt.Errorf("want block or cyclic, have %q", v)
			}
		case "msg":
			sc.Msg, err = strconv.Atoi(v)
		case "seed":
			sc.Seed, err = strconv.ParseInt(v, 10, 64)
		case "jitter":
			sc.Jitter, err = strconv.ParseFloat(v, 64)
		case "blind":
			sc.Blind = v == "1" || v == "true"
		case "fabric":
			var fs fabric.Spec
			if fs, err = fabric.ParseSpec(v); err == nil {
				sc.Fabric = fs.String()
				if fs.Kind == fabric.Flat {
					sc.Fabric = ""
				}
			}
		case "nodehcas":
			sc.NodeHCAs, err = splitInts(v)
		case "railbw":
			sc.RailBW, err = splitFloats(v)
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return sc, fmt.Errorf("verify: field %q: %v", field, err)
		}
	}
	if faultText != "" && faultText != "none" && faultText != "(healthy)" {
		sched, err := faults.Parse(strings.ReplaceAll(faultText, ";", "\n"))
		if err != nil {
			return sc, err
		}
		sc.Faults = sched
	}
	if sc.Alg == "" {
		return sc, fmt.Errorf("verify: spec is missing alg=")
	}
	return sc, sc.Validate()
}
