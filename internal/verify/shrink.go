package verify

import (
	"mha/internal/faults"
	"mha/internal/topology"
)

// Shrink greedily minimizes a failing scenario: it repeatedly tries the
// candidate reductions below (most aggressive first), keeps the first one
// that still fails Check, and stops at a fixed point or after budget
// candidate evaluations. vs must be the violations sc already exhibited;
// Shrink returns the smallest failing scenario found, that scenario's
// violations (remembered from the candidate evaluation that kept it, so
// callers never need an extra Check beyond the budget), and the number of
// candidates evaluated — always <= budget, and with budget <= 0 the
// original scenario comes straight back. Every reduction strictly
// decreases some component (fault count, nodes, ppn, rails, sockets,
// message size, jitter, blindness, layout, seed), so the loop terminates.
func Shrink(sc Scenario, vs []Violation, budget int) (Scenario, []Violation, int) {
	cur, curVs := sc, vs
	used := 0
	for used < budget {
		improved := false
		for _, cand := range candidates(cur) {
			if used >= budget {
				break
			}
			if cand.Spec() == cur.Spec() || cand.Validate() != nil {
				continue
			}
			used++
			if cvs := Check(cand); len(cvs) > 0 {
				cur, curVs = cand, cvs
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curVs, used
}

// candidates proposes one-step reductions of sc, most aggressive first.
func candidates(sc Scenario) []Scenario {
	var out []Scenario
	with := func(mut func(*Scenario)) {
		c := sc
		mut(&c)
		out = append(out, c)
	}
	if sc.Faults.Len() > 0 {
		with(func(c *Scenario) { c.Faults = nil })
		fs := sc.Faults.Faults()
		for i := range fs {
			rest := make([]faults.Fault, 0, len(fs)-1)
			rest = append(rest, fs[:i]...)
			rest = append(rest, fs[i+1:]...)
			if sched, err := faults.New(rest...); err == nil {
				with(func(c *Scenario) { c.Faults = sched })
			}
		}
	}
	if sc.Blind {
		with(func(c *Scenario) { c.Blind = false })
	}
	if sc.Jitter > 0 {
		with(func(c *Scenario) { c.Jitter = 0 })
	}
	if sc.Fabric != "" {
		with(func(c *Scenario) { c.Fabric = "" })
	}
	if len(sc.NodeHCAs) > 0 {
		with(func(c *Scenario) { c.NodeHCAs = nil })
	}
	if len(sc.RailBW) > 0 {
		with(func(c *Scenario) { c.RailBW = nil })
	}
	if sc.Sockets > 1 {
		with(func(c *Scenario) { c.Sockets = 0 })
	}
	for _, n := range []int{1, sc.Nodes / 2, sc.Nodes - 1} {
		if n >= 1 && n < sc.Nodes {
			n := n
			with(func(c *Scenario) {
				c.Nodes = n
				if len(c.NodeHCAs) > n {
					c.NodeHCAs = append([]int(nil), c.NodeHCAs[:n]...)
				}
			})
		}
	}
	for _, l := range []int{1, sc.PPN / 2, sc.PPN - 1} {
		if l >= 1 && l < sc.PPN {
			l := l
			with(func(c *Scenario) { c.PPN = l })
		}
	}
	for _, h := range []int{1, sc.HCAs / 2} {
		if h >= 1 && h < sc.HCAs {
			h := h
			with(func(c *Scenario) {
				c.HCAs = h
				if len(c.RailBW) > h {
					c.RailBW = append([]float64(nil), c.RailBW[:h]...)
				}
				if len(c.NodeHCAs) > 0 {
					clamped := append([]int(nil), c.NodeHCAs...)
					for i, v := range clamped {
						if v > h {
							clamped[i] = h
						}
					}
					c.NodeHCAs = clamped
				}
			})
		}
	}
	if sc.Layout != topology.Block {
		with(func(c *Scenario) { c.Layout = topology.Block })
	}
	for _, m := range []int{0, 1, sc.Msg / 2, sc.Msg - 1} {
		if m >= 0 && m < sc.Msg {
			m := m
			with(func(c *Scenario) { c.Msg = m })
		}
	}
	if sc.Seed != 1 {
		with(func(c *Scenario) { c.Seed = 1 })
	}
	return out
}
