package verify

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"mha/internal/mpi"
	"mha/internal/sim"
)

// TestCampaignHeadClean is the standing correctness gate: a seeded
// campaign over every registered variant must find nothing on HEAD. The
// campaign itself also exercises the determinism cross-check (every
// scenario runs twice).
func TestCampaignHeadClean(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 30
	}
	rep, err := Campaign(n, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenarios != n {
		t.Fatalf("ran %d scenarios, want %d", rep.Scenarios, n)
	}
	for _, f := range rep.Failures {
		t.Errorf("FAIL %s\n  shrunk: %s\n  %v", f.Scenario.Spec(), f.Shrunk.Spec(), f.Violations)
	}
	if len(rep.PerAlg) < 10 {
		t.Errorf("campaign only touched %d algorithms: %v", len(rep.PerAlg), rep.PerAlg)
	}
}

// brokenRing is a deliberately mutated ring allgather: the forwarded block
// lands one byte past its slot whenever the buffer leaves room — the
// off-by-one class of bug the harness exists to catch.
func brokenRing(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
	c := w.CommWorld()
	m := send.Len()
	n := c.Size()
	me := c.Rank(p)
	p.LocalCopy(recv.Slice(me*m, m), send)
	if n == 1 {
		return
	}
	right, left := (me+1)%n, (me-1+n)%n
	cur := me
	for s := 0; s < n-1; s++ {
		tag := mpi.Tag(c.Epoch(p), 12, s)
		rreq := p.Irecv(c, left, tag)
		sreq := p.Isend(c, right, tag, recv.Slice(cur*m, m))
		data := p.Wait(rreq)
		cur = (cur - 1 + n) % n
		off := cur * m
		if off+1+m <= recv.Len() && m > 0 {
			off++ // the mutation
		}
		recv.Slice(off, m).CopyFrom(data)
		p.Wait(sreq)
	}
}

// TestMutationCaught proves the differential oracle plus shrinker pipeline
// catches a planted bug and produces a minimal, replayable repro spec.
func TestMutationCaught(t *testing.T) {
	Register(Algorithm{Name: "broken-ring", Run: brokenRing})
	rep, err := Campaign(12, 7, Options{Algs: []string{"broken-ring"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("planted off-by-one survived a 12-scenario campaign")
	}
	for _, f := range rep.Failures {
		sh := f.Shrunk
		if sh.Nodes*sh.PPN > 4 || sh.Msg > 64 || sh.Faults.Len() > 0 {
			t.Errorf("shrinker left a large repro: %s", sh.Spec())
		}
		hasOracle := false
		for _, v := range f.Violations {
			if v.Kind == "oracle" {
				hasOracle = true
			}
		}
		if !hasOracle {
			t.Errorf("violations lack an oracle report: %v", f.Violations)
		}
		// The one-line spec must replay to the same verdict.
		replay, perr := ParseSpec(sh.Spec())
		if perr != nil {
			t.Fatalf("shrunk spec does not parse: %v\n  %s", perr, sh.Spec())
		}
		if len(Check(replay)) == 0 {
			t.Errorf("replayed repro passed: %s", sh.Spec())
		}
	}
}

// TestNondeterminismCaught plants a variant whose timing depends on
// cross-run mutable state; the same-seed double run must flag it.
func TestNondeterminismCaught(t *testing.T) {
	var runs int64
	Register(Algorithm{Name: "broken-flaky", Run: func(p *mpi.Proc, w *mpi.World, send, recv mpi.Buf) {
		if p.Rank() == 0 && atomic.AddInt64(&runs, 1)%2 == 0 {
			p.Compute(5 * sim.Microsecond)
		}
		ByNameMust("ring").Run(p, w, send, recv)
	}})
	sc := Scenario{Alg: "broken-flaky", Nodes: 2, PPN: 2, HCAs: 1, Msg: 64, Seed: 1}
	vs := Check(sc)
	found := false
	for _, v := range vs {
		if v.Kind == "determinism" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-run nondeterminism not flagged: %v", vs)
	}
}

// ByNameMust is a test helper; it panics on unknown names.
func ByNameMust(name string) Algorithm {
	a, ok := ByName(name)
	if !ok {
		panic("unknown algorithm " + name)
	}
	return a
}

// TestSpecRoundTrip: every generated scenario must survive
// Spec -> ParseSpec -> Spec byte-identically, including fault schedules.
func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	algs := Algorithms()
	for i := 0; i < 100; i++ {
		sc := Generate(rng, algs, 48)
		spec := sc.Spec()
		back, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("spec %q does not parse: %v", spec, err)
		}
		if back.Spec() != spec {
			t.Fatalf("round trip changed the spec:\n  in:  %s\n  out: %s", spec, back.Spec())
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"nodes=2",                         // missing alg
		"alg=no-such-algorithm nodes=2",   // unknown variant
		"alg=ring nodes=x",                // non-numeric
		"alg=ring bogus=1",                // unknown key
		"alg=ring nodes=0",                // invalid topology
		"alg=mha-intra nodes=2 ppn=2",     // contract violation
		"alg=ring faults=down node=5 z=1", // bad fault field
		"alg=ring nodes=2 ppn=1 layout=hexagonal",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", bad)
		}
	}
}

// TestShrinkIsGreedyMinimal: shrinking an already-minimal failing scenario
// is a fixed point.
func TestShrinkFixedPoint(t *testing.T) {
	Register(Algorithm{Name: "broken-ring", Run: brokenRing})
	min := Scenario{Alg: "broken-ring", Nodes: 1, PPN: 2, HCAs: 1, Msg: 1, Seed: 1}
	vs := Check(min)
	if len(vs) == 0 {
		t.Fatal("expected the minimal broken-ring scenario to fail")
	}
	shrunk, _, _ := Shrink(min, vs, 100)
	if shrunk.Spec() != min.Spec() {
		t.Fatalf("shrinking a minimal scenario changed it: %s -> %s", min.Spec(), shrunk.Spec())
	}
}

// TestShrinkRespectsBudget: the budget is documented as "candidate
// evaluations per failure" — Shrink must never evaluate more candidates
// than that, a budget of 1 must hand back a scenario without panicking
// or looping, and the returned violations must belong to the returned
// scenario without costing an extra evaluation.
func TestShrinkRespectsBudget(t *testing.T) {
	Register(Algorithm{Name: "broken-ring", Run: brokenRing})
	// A deliberately non-minimal failing scenario so shrinking has work.
	sc := Scenario{Alg: "broken-ring", Nodes: 2, PPN: 4, HCAs: 2, Msg: 64, Seed: 7}
	vs := Check(sc)
	if len(vs) == 0 {
		t.Fatal("expected the broken-ring scenario to fail")
	}
	for _, budget := range []int{0, 1, 2, 5, 40} {
		shrunk, svs, used := Shrink(sc, vs, budget)
		if used > budget {
			t.Errorf("budget %d: Shrink evaluated %d candidates", budget, used)
		}
		if err := shrunk.Validate(); err != nil {
			t.Errorf("budget %d: shrunk scenario invalid: %v", budget, err)
		}
		if len(svs) == 0 {
			t.Errorf("budget %d: shrunk scenario %s reported no violations", budget, shrunk.Spec())
		}
		if got := Check(shrunk); len(got) == 0 {
			t.Errorf("budget %d: returned scenario %s does not actually fail", budget, shrunk.Spec())
		}
	}
	// With no budget at all the original scenario must come straight back.
	shrunk, svs, used := Shrink(sc, vs, 0)
	if shrunk.Spec() != sc.Spec() || used != 0 {
		t.Errorf("budget 0 shrank %s to %s (used %d)", sc.Spec(), shrunk.Spec(), used)
	}
	if fmt.Sprint(svs) != fmt.Sprint(vs) {
		t.Errorf("budget 0 changed violations: %v vs %v", svs, vs)
	}
}

// TestCampaignChecksStayWithinShrinkBudget: the campaign's accounting
// must show at most ShrinkBudget extra checks per failure — the old
// implementation spent budget+1 by re-checking the shrunk scenario.
func TestCampaignChecksStayWithinShrinkBudget(t *testing.T) {
	Register(Algorithm{Name: "broken-ring", Run: brokenRing})
	const n, budget = 6, 1
	rep, err := Campaign(n, 99, Options{Algs: []string{"broken-ring"}, ShrinkBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) == 0 {
		t.Fatal("broken-ring campaign found no failures")
	}
	maxChecks := n + len(rep.Failures)*budget
	if rep.Checks > maxChecks {
		t.Errorf("campaign spent %d checks; budget allows at most %d (%d scenarios + %d failures * %d)",
			rep.Checks, maxChecks, n, len(rep.Failures), budget)
	}
	for _, f := range rep.Failures {
		if len(f.Violations) == 0 {
			t.Errorf("failure %s carries no violations", f.Shrunk.Spec())
		}
	}
}

// TestRegistryConstraints: the built-in contract flags must match the
// algorithms' documented requirements.
func TestRegistryConstraints(t *testing.T) {
	for _, name := range []string{"mha", "two-level", "multi-leader", "mha-3level"} {
		a := ByNameMust(name)
		if !a.BlockOnly {
			t.Errorf("%s must be BlockOnly (hierarchical designs assume contiguous node blocks)", name)
		}
	}
	if a := ByNameMust("mha-intra"); !a.SingleNode {
		t.Error("mha-intra must be SingleNode")
	}
	if a := ByNameMust("multi-leader"); !a.EvenPPN {
		t.Error("multi-leader (2 groups) must require even ppn")
	}
	if a := ByNameMust("ring"); a.BlockOnly || a.SingleNode || a.EvenPPN {
		t.Error("flat ring must carry no constraints")
	}
}
