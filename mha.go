// Package mha is a Go reproduction of "Designing Hierarchical Multi-HCA
// Aware Allgather in MPI" (Tran et al., ICPP Workshops 2022): the MHA
// collective algorithms, the conventional and two-level baselines they are
// evaluated against, the analytic cost models of the paper's Section 4,
// and the deterministic virtual-time cluster simulator everything runs on.
//
// The package is a facade over the internal implementation: it re-exports
// the types and functions a user composes. A minimal program looks like
//
//	w := mha.NewWorld(mha.Config{Topo: mha.NewCluster(4, 8, 2)})
//	err := w.Run(func(p *mha.Proc) {
//		send := mha.Bytes([]byte{byte(p.Rank())})
//		recv := mha.NewBuf(p.Size())
//		mha.Allgather(p, w, send, recv)
//	})
//
// Simulated ranks are goroutines; payloads really move (so results are
// verifiable), and virtual time comes from a calibrated cost model of the
// paper's testbed (Thor: 2x HDR100 InfiniBand rails per node, CMA
// intra-node, shared-memory chunk pipelines). Pass Phantom buffers to run
// the paper's largest configurations (1024 ranks, multi-MB buffers)
// without materializing the data.
package mha

import (
	"fmt"
	"strings"

	"mha/internal/cluster"
	"mha/internal/collectives"
	"mha/internal/compose"
	"mha/internal/core"
	"mha/internal/explore"
	"mha/internal/fabric"
	"mha/internal/faults"
	"mha/internal/machines"
	"mha/internal/mpi"
	"mha/internal/netmodel"
	"mha/internal/perfmodel"
	"mha/internal/sched"
	"mha/internal/sim"
	"mha/internal/topology"
	"mha/internal/trace"
	"mha/internal/tuner"
	"mha/internal/verify"
)

// Re-exported core types. See the internal packages for full method
// documentation.
type (
	// Cluster describes the simulated machine: nodes x PPN x HCAs.
	Cluster = topology.Cluster
	// Params is the communication cost model (Table 1 of the paper).
	Params = netmodel.Params
	// Config configures a simulated MPI job.
	Config = mpi.Config
	// World is one simulated MPI job.
	World = mpi.World
	// Proc is the per-rank handle inside World.Run.
	Proc = mpi.Proc
	// Comm is a communicator (group of ranks with its own numbering).
	Comm = mpi.Comm
	// Buf is a real or phantom message buffer.
	Buf = mpi.Buf
	// Request is an in-flight nonblocking operation.
	Request = mpi.Request
	// Profile is one library's collective selection logic.
	Profile = collectives.Profile
	// Reducer combines payloads element-wise (allreduce).
	Reducer = collectives.Reducer
	// Model evaluates the paper's analytic cost equations.
	Model = perfmodel.Model
	// Recorder collects timeline events for trace rendering.
	Recorder = trace.Recorder
	// Time is virtual nanoseconds since simulation start.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// InterConfig customizes the hierarchical MHA allgather.
	InterConfig = core.InterConfig
	// OffloadPoint is one sample of the offload tuning curve (Figure 5).
	OffloadPoint = core.OffloadPoint
)

// Virtual-time units for Duration and Time values.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// NewCluster returns a block-layout cluster of nodes x ppn with hcas
// network rails per node.
func NewCluster(nodes, ppn, hcas int) Cluster { return topology.New(nodes, ppn, hcas) }

// Thor returns the default cost-model calibration (the paper's testbed).
func Thor() *Params { return netmodel.Thor() }

// ThetaGPU returns an 8-rail HDR200 calibration for rail-scaling studies.
func ThetaGPU() *Params { return netmodel.ThetaGPU() }

// NewWorld builds a simulated MPI job.
func NewWorld(cfg Config) *World { return mpi.New(cfg) }

// NewTracer returns an empty timeline recorder to pass in Config.Tracer.
func NewTracer() *Recorder { return trace.New() }

// Buffer constructors.
var (
	// Bytes wraps a byte slice as a real buffer.
	Bytes = mpi.Bytes
	// NewBuf allocates a zeroed real buffer.
	NewBuf = mpi.NewBuf
	// Phantom returns a size-only buffer (no backing bytes).
	Phantom = mpi.Phantom
)

// Allgather is the paper's contribution under its top-level entry point:
// the multi-HCA-aware allgather (MHA-intra on one node, the hierarchical
// MHA-inter design across nodes).
func Allgather(p *Proc, w *World, send, recv Buf) { core.MHAAllgather(p, w, send, recv) }

// AllgatherCfg runs the hierarchical design with explicit configuration
// (phase-2 algorithm, overlap and phase-1 ablations).
func AllgatherCfg(p *Proc, w *World, send, recv Buf, cfg InterConfig) {
	core.MHAInterAllgatherCfg(p, w, send, recv, cfg)
}

// IntraAllgather is MHA-intra (Section 3.1) on an arbitrary single-node
// communicator, with the analytic offload of Equation (1).
func IntraAllgather(p *Proc, c *Comm, send, recv Buf) {
	core.MHAIntraAllgather(p, c, send, recv)
}

// Allreduce is the improved ring allreduce of Section 5.4 (ring
// reduce-scatter + MHA allgather). The buffer must be a multiple of
// 8*size bytes; see MHAProfile for a padding-free entry point.
func Allreduce(p *Proc, w *World, buf Buf, red Reducer) { core.MHAAllreduce(p, w, buf, red) }

// SumF64 returns the float64-sum reducer used by the evaluation; MaxF64
// and MinF64 are the MPI_MAX/MPI_MIN analogues.
func SumF64() Reducer { return collectives.SumF64() }

// MaxF64 returns the element-wise float64 maximum reducer.
func MaxF64() Reducer { return collectives.MaxF64() }

// MinF64 returns the element-wise float64 minimum reducer.
func MinF64() Reducer { return collectives.MinF64() }

// The compared implementations, exposed as profiles.
var (
	// MHAProfile is the paper's design.
	MHAProfile = core.Profile
	// HPCXProfile models NVIDIA HPC-X (flat algorithms, pt2pt multirail).
	HPCXProfile = collectives.HPCX
	// MVAPICH2XProfile models MVAPICH2-X (two-level, sequential phases).
	MVAPICH2XProfile = collectives.MVAPICH2X
)

// Baseline algorithms, exported for comparison studies.
var (
	RingAllgather         = collectives.RingAllgather
	RDAllgather           = collectives.RDAllgather
	BruckAllgather        = collectives.BruckAllgather
	DirectSpreadAllgather = collectives.DirectSpreadAllgather
	RingAllreduce         = collectives.RingAllreduce
	RDAllreduce           = collectives.RDAllreduce
	// MultiLeaderAllgather is the Kandalla et al. multi-leader design with
	// a configurable leader count per node.
	MultiLeaderAllgather = collectives.MultiLeaderAllgather
)

// Tuning tables: measured algorithm-selection tables in the style
// production MPI libraries ship (see cmd/mhatune).
type (
	// TuningTable is a persisted per-size selection table.
	TuningTable = core.TuningTable
	// TuningEntry is one size class of a TuningTable.
	TuningEntry = core.TuningEntry
)

// BuildTuningTable measures the best phase-2 algorithm and offload per
// size class; LoadTuningTable reads a table saved with TuningTable.Save.
var (
	BuildTuningTable = core.BuildTuningTable
	LoadTuningTable  = core.LoadTuningTable
)

// NumaThor returns the Thor calibration with a 1.5x cross-socket CMA
// penalty, for the 3-level NUMA studies (set Cluster.Sockets > 1).
func NumaThor() *Params { return netmodel.NumaThor() }

// Allgather3Level is the NUMA-aware 3-level hierarchical allgather (the
// paper's Section 7 future work): intra-socket, inter-socket, inter-node.
func Allgather3Level(p *Proc, w *World, send, recv Buf) {
	core.MHA3LevelAllgather(p, w, send, recv)
}

// The hierarchical multi-rail template applied to the other collectives
// (the paper's "address other collectives" future work), with their flat
// baselines alongside.
var (
	Bcast            = core.MHABcast
	Reduce           = core.MHAReduce
	Gather           = core.MHAGather
	Scatter          = core.MHAScatter
	Alltoall         = core.MHAAlltoall
	BinomialBcast    = collectives.BinomialBcast
	BinomialReduce   = collectives.BinomialReduce
	LinearGather     = collectives.LinearGather
	LinearScatter    = collectives.LinearScatter
	PairwiseAlltoall = collectives.PairwiseAlltoall
)

// AllgatherRequest is the handle of a nonblocking allgather; complete it
// with Wait.
type AllgatherRequest = collectives.AllgatherRequest

// IAllgather starts a nonblocking allgather (dissemination schedule), so
// the caller can compute between the start and the Wait.
func IAllgather(p *Proc, c *Comm, send, recv Buf) *AllgatherRequest {
	return collectives.IAllgatherDirect(p, c, send, recv)
}

// Machine is a named cluster preset (topology + calibration).
type Machine = machines.Machine

// Machines lists the named presets (thor, thor-numa, thetagpu, ...);
// MachineByName resolves one.
var (
	Machines      = machines.All
	MachineByName = machines.Get
)

// Fault injection: schedules of rail faults (outages, degraded bandwidth,
// added latency, flapping) drive the simulated HCAs and the rail-health
// registry the transport consults for failover and re-weighted striping.
// Pass a schedule in Config.Faults; set Config.FaultBlind for the naive
// (health-unaware) baseline.
type (
	// FaultSchedule is an immutable, deterministic set of rail faults.
	FaultSchedule = faults.Schedule
	// Fault is one fault: a Kind plus scope (node/rail/window) parameters.
	Fault = faults.Fault
	// FaultKind selects the failure mode of a Fault.
	FaultKind = faults.Kind
	// RailStat summarizes one rail's utilization after a run (World.RailStats).
	RailStat = mpi.RailStat
)

// The fault kinds and scope wildcards.
const (
	FaultDown    = faults.Down
	FaultDegrade = faults.Degrade
	FaultLatency = faults.Latency
	FaultFlap    = faults.Flap
	AllNodes     = faults.AllNodes
	AllRails     = faults.AllRails
)

// Fault-schedule constructors: NewFaultSchedule validates a fault list,
// ParseFaults reads the textual spec format ("down node=0 rail=1
// until=40us", one fault per line), and RandomFaults derives a
// reproducible schedule from a seed.
var (
	NewFaultSchedule = faults.New
	ParseFaults      = faults.Parse
	RandomFaults     = faults.Random
)

// Communication-schedule IR (internal/sched, cmd/mhasched): the
// collective designs as explicit data — steps of (src, dst, block
// window, transport/rail) transfers plus intra-node staging copies —
// with a static analyzer (correctness invariants, alpha-beta
// critical-path cost), an interpreter that executes any valid schedule
// on the simulated runtime, and a beam synthesizer over stripe/rail/
// fusion choices.
type (
	// Schedule is an explicit communication schedule.
	Schedule = sched.Schedule
	// ScheduleStep is one synchronization round of a Schedule.
	ScheduleStep = sched.Step
	// ScheduleTransfer is one point-to-point transfer of a step.
	ScheduleTransfer = sched.Transfer
	// ScheduleReport is the analyzer's verdict: cost plus traffic census.
	ScheduleReport = sched.Report
	// ScheduleBuilder accumulates steps into a validated Schedule.
	ScheduleBuilder = sched.Builder
	// SynthesisResult is the schedule-search outcome (best plan plus the
	// measured hand-written baselines).
	SynthesisResult = sched.SynthResult
	// SynthesisOptions tunes the schedule search (beam width, rounds).
	SynthesisOptions = sched.SynthOptions
)

// Schedule lowerings, serialization, and tooling entry points.
var (
	// RingSchedule / RDSchedule / MHASchedule lower the hand-written
	// designs to the IR; MHASchedule uses the analytic offload (Eq. 1).
	RingSchedule = sched.Ring
	RDSchedule   = sched.RecursiveDoubling
	// ParseSchedule reads the text or JSON form (see Schedule.String and
	// Schedule.JSON); AnalyzeSchedule checks invariants and prices the
	// critical path; ExecuteSchedule runs a valid schedule as this rank's
	// share of an allgather; SimulateSchedule measures one phantom run.
	ParseSchedule    = sched.Parse
	AnalyzeSchedule  = sched.Analyze
	ExecuteSchedule  = sched.Execute
	SimulateSchedule = sched.Simulate
	// SynthesizeSchedule searches schedule space for a machine and
	// message size; the emitted plan simulates no slower than the best
	// hand-written lowering.
	SynthesizeSchedule = sched.Synthesize
)

// MHASchedule lowers the paper's two-phase hierarchical design to the
// schedule IR with the analytic phase-1 offload.
func MHASchedule(topo Cluster, prm *Params, msg int) *Schedule {
	return sched.TwoPhaseMHA(topo, prm, msg, sched.MHAOptions{Offload: sched.AutoOffload})
}

// Health-aware scheduling: a rail-health vector (one fraction per rail,
// 1 healthy, 0 down, in between degraded; nil = all healthy) threads
// through analysis, synthesis, and simulation, so schedules can be
// priced and searched for the machine as it is, not as built.
var (
	// AnalyzeScheduleHealth prices a schedule under a rail-health vector
	// and rejects schedules that pin transfers to down rails.
	AnalyzeScheduleHealth = sched.AnalyzeHealth
	// ApplyScheduleHealth reroutes a schedule's dead-rail pins onto the
	// runtime's health-aware striping, returning a repaired clone.
	ApplyScheduleHealth = sched.ApplyHealth
	// SimulateScheduleHealth measures one phantom run under the fault
	// schedule equivalent to a steady health vector.
	SimulateScheduleHealth = sched.SimulateHealth
)

// Compositional collectives (internal/compose, cmd/mhacompose): a
// collective as a declarative pipeline of multicast / reduce / fence
// primitives over the machine hierarchy, compiled to the schedule IR
// and checked by the same analyzer and verification campaign as the
// hand-written designs (see DESIGN.md section 13).
type (
	// Composition is a named primitive pipeline deriving one collective.
	Composition = compose.Composition
	// CompositionPlan is a lowered composition: schedule plus goal,
	// ready for analysis, simulation, or execution.
	CompositionPlan = compose.Plan
	// Hierarchy is the machine view (world -> node -> leader-group ->
	// rail) that scoped primitives lower against.
	Hierarchy = compose.Hierarchy
	// Collective names the collective a composition derives.
	Collective = compose.Collective
)

// The derivable collectives.
const (
	AllgatherCollective     = compose.Allgather
	ReduceScatterCollective = compose.ReduceScatter
	AlltoallCollective      = compose.Alltoall
	GatherCollective        = compose.Gather
	ScatterCollective       = compose.Scatter
	AllreduceCollective     = compose.Allreduce
	BcastCollective         = compose.Bcast
)

// Composition entry points: the standard pipelines per collective, the
// text-form parsers, the hierarchy constructors, the compiler, and the
// derived-variant registry consumed by verification, the cluster job
// mix, and the bench experiments.
var (
	HierarchicalComposition = compose.Hierarchical
	FlatComposition         = compose.Flat
	ParseComposition        = compose.ParseComposition
	ParseHierarchy          = compose.ParseHierarchy
	NewHierarchy            = compose.NewHierarchy
	LowerComposition        = compose.Lower
	ComposedVariants        = compose.Variants
)

// The autotuner service (internal/tuner, cmd/mhatuned): schedule
// synthesis as a service. An Autotuner answers "best schedule for this
// (topology, ppn, rails, layout, message size, rail health)" queries
// from a deterministic LRU cache of synthesized decisions, deduplicating
// concurrent misses so each distinct machine state is synthesized once,
// and persisting the cache across restarts (see DESIGN.md section 11).
type (
	// Autotuner is the caching schedule-decision service.
	Autotuner = tuner.Service
	// AutotunerConfig sizes the cache and tunes the search.
	AutotunerConfig = tuner.Config
	// TunerQuery is one machine-state query.
	TunerQuery = tuner.Query
	// TunerDecision is the served answer: schedule plus pricing.
	TunerDecision = tuner.Decision
	// TunerStats is a point-in-time serving-statistics snapshot.
	TunerStats = tuner.Stats
)

// Autotuner entry points: NewAutotuner builds a service, ParseTunerQuery
// strictly parses a request body, AutotunerHandler serves the HTTP API
// (POST /v1/schedule, GET /v1/stats, GET /healthz), and
// WarmStartAutotuner pre-synthesizes the paper's Thor configurations.
var (
	NewAutotuner       = tuner.New
	ParseTunerQuery    = tuner.ParseQuery
	AutotunerHandler   = tuner.Handler
	WarmStartAutotuner = tuner.WarmStart
)

// NewModel builds the analytic cost model of Section 4 for a shape.
func NewModel(p *Params, c Cluster) Model { return perfmodel.New(p, c) }

// TuneOffload runs the empirical offload search of Section 3.1/Figure 5 on
// a single-node topology, returning the best offload and the sampled
// curve.
func TuneOffload(topo Cluster, prm *Params, msgSize, points int) (float64, []OffloadPoint) {
	return core.TuneOffload(topo, prm, msgSize, points)
}

// MeasureAllgather times one phantom-mode allgather of a profile on a
// fresh world — the building block for custom sweeps.
func MeasureAllgather(topo Cluster, prm *Params, msgSize int, prof Profile) Duration {
	return core.MeasureProfileAllgather(topo, prm, msgSize, prof)
}

// MeasureAllreduce times one phantom-mode allreduce of n bytes.
func MeasureAllreduce(topo Cluster, prm *Params, n int, prof Profile) Duration {
	return core.MeasureProfileAllreduce(topo, prm, n, prof)
}

// Verification: the randomized differential-verification harness (see
// cmd/mhaverify and DESIGN.md section 7). Every allgather variant runs
// with real payloads against a byte-exact oracle, under simulator
// invariant audits (clock monotonicity, resource-busy conservation,
// drained mailboxes at teardown) and a same-seed determinism cross-check.
// World.VerifyTeardown exposes the post-run audit for custom jobs.

// VerifyScenarioSpec replays one verification scenario given as the
// harness's one-line spec format, e.g.
//
//	alg=mha nodes=2 ppn=4 hcas=2 msg=257 faults=down node=0 rail=1 until=40us
//
// and returns an error describing every violated property, or nil.
func VerifyScenarioSpec(spec string) error {
	sc, err := verify.ParseSpec(spec)
	if err != nil {
		return err
	}
	vs := verify.Check(sc)
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	return fmt.Errorf("mha: scenario %q failed verification: %s", sc.Spec(), strings.Join(msgs, "; "))
}

// VerifyCampaign runs n seeded random verification scenarios across every
// registered allgather variant and returns an error carrying a shrunk,
// replayable repro spec for each failure, or nil when all pass.
func VerifyCampaign(n int, seed int64) error {
	rep, err := verify.Campaign(n, seed, verify.Options{})
	if err != nil {
		return err
	}
	if len(rep.Failures) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mha: %d of %d verification scenarios failed:", len(rep.Failures), rep.Scenarios)
	for _, f := range rep.Failures {
		fmt.Fprintf(&b, "\n  %s", f.Shrunk.Spec())
	}
	return fmt.Errorf("%s", b.String())
}

// Exhaustive exploration: the DPOR model checker for small worlds (see
// cmd/mhaexplore and DESIGN.md section 12). Where the verification
// campaign samples scenarios at random, Explore enumerates every
// meaningfully distinct interleaving of same-virtual-time events — and,
// with a fault budget, every single-rail-fault placement — checking the
// byte-exact oracle and the teardown audits at every terminal state.
type (
	// ExploreOptions selects the variants, world shape, and budgets of
	// an exhaustive exploration.
	ExploreOptions = explore.Options
	// ExploreReport summarizes an exploration: executions visited,
	// engine steps, the unreduced interleaving estimate, completeness,
	// and any counterexamples (each with a shrunk one-line repro spec).
	ExploreReport = explore.Report
)

// Explore exhaustively verifies the selected variants on a small world,
// visiting every meaningfully distinct event interleaving per fault
// placement. Worlds are capped at 8 ranks; the report is deterministic.
func Explore(opt ExploreOptions) (*ExploreReport, error) {
	return explore.Run(opt)
}

// ExploreReplay replays one explored schedule given as the explorer's
// one-line repro spec format, e.g.
//
//	alg=ring nodes=2 ppn=2 hcas=2 msg=8 fault=node0.rail1 sched=0.2.1
//
// and returns an error describing every violated property, or nil.
func ExploreReplay(spec string) error {
	s, err := explore.ParseSpec(spec)
	if err != nil {
		return err
	}
	vs, err := explore.Replay(s)
	if err != nil {
		return err
	}
	if len(vs) == 0 {
		return nil
	}
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.String()
	}
	return fmt.Errorf("mha: schedule %q failed verification: %s", s, strings.Join(msgs, "; "))
}

// Multi-tenant cluster scheduling: a stream of collective jobs admitted
// onto ONE shared fabric, running concurrently in virtual time and
// contending for HCA rails and memory buses (see cmd/mhacluster and
// DESIGN.md section 9).
type (
	// ClusterJob is one collective job in a scheduler workload: which
	// collective, how many ranks, how many bytes, when it arrives, and
	// its priority under the priority queue.
	ClusterJob = cluster.JobSpec
	// ClusterConfig configures a scheduler run: topology, placement
	// policy (ClusterPacked, ClusterSpread, ClusterRailAware), admission
	// queue, backpressure, payload checking, faults.
	ClusterConfig = cluster.Config
	// ClusterResult aggregates per-job metrics (queue wait, makespan,
	// slowdown vs isolated, rail share) and the cluster-wide summary.
	ClusterResult = cluster.Result
	// ClusterJobMetrics is one job's scheduling outcome.
	ClusterJobMetrics = cluster.JobMetrics
)

// Placement policies of the multi-tenant scheduler.
const (
	// ClusterPacked fills the lowest-numbered free ranks (fragmenting
	// jobs across shared nodes under load).
	ClusterPacked = cluster.Packed
	// ClusterSpread balances ranks across nodes by free-slot count.
	ClusterSpread = cluster.Spread
	// ClusterRailAware prefers nodes with no co-tenant jobs, the most
	// healthy rails, and the least rail backlog — the policy that keeps
	// tenants off each other's rails.
	ClusterRailAware = cluster.RailAware
)

// RunCluster admits jobs onto one shared simulated fabric and runs them
// to completion under cfg's policy, returning per-job and aggregate
// metrics. The run is deterministic: identical inputs give identical
// schedules, metrics, and (with a Tracer) trace hashes.
func RunCluster(cfg ClusterConfig, jobs []ClusterJob) (*ClusterResult, error) {
	return cluster.Run(cfg, jobs)
}

// ClusterRandomJobs draws a seeded, deterministic workload of n collective
// jobs (mixed allgather/allreduce/bcast, varied sizes and rank counts)
// with arrivals spread over the horizon.
func ClusterRandomJobs(seed int64, n int, topo Cluster, horizon Duration) []ClusterJob {
	return cluster.RandomJobs(seed, n, topo, horizon)
}

// Structured fabrics (internal/fabric, cmd/mhafabric): fat-tree and
// dragonfly inter-node network models with deterministic routing over
// shared per-link resources (DESIGN.md §14).
type (
	// FabricSpec describes a structured inter-node network. Set one in
	// Config.Fabric (as a pointer) to route cross-node traffic over its
	// shared links; nil keeps the flat non-blocking fabric.
	FabricSpec = fabric.Spec
	// FabricNetwork is a built fabric instance: links, capacities, and
	// the precomputed pairwise route table.
	FabricNetwork = fabric.Network
)

// ParseFabricSpec reads the compact fabric grammar: "flat",
// "ft:arity=2,levels=2,over=2:1", "dfly:groups=2,routers=2,nodes=2".
func ParseFabricSpec(text string) (FabricSpec, error) { return fabric.ParseSpec(text) }

// BuildFabric instantiates a fabric spec over a cluster for inspection
// (describe/route); worlds build their own from Config.Fabric.
func BuildFabric(spec FabricSpec, topo Cluster, prm *Params) (*FabricNetwork, error) {
	return fabric.Build(nil, spec, topo, prm)
}
