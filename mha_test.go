package mha_test

// Facade tests: exercise the library exactly as an external user would,
// through the public mha package only.

import (
	"bytes"
	"testing"

	"mha"
)

func TestPublicAllgatherRoundTrip(t *testing.T) {
	topo := mha.NewCluster(2, 4, 2)
	w := mha.NewWorld(mha.Config{Topo: topo})
	n := topo.Size()
	const m = 256
	err := w.Run(func(p *mha.Proc) {
		send := mha.NewBuf(m)
		for i := range send.Data() {
			send.Data()[i] = byte(p.Rank())
		}
		recv := mha.NewBuf(n * m)
		mha.Allgather(p, w, send, recv)
		for r := 0; r < n; r++ {
			if recv.Data()[r*m] != byte(r) || recv.Data()[r*m+m-1] != byte(r) {
				t.Errorf("rank %d: block %d corrupted", p.Rank(), r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicProfilesOrdering(t *testing.T) {
	topo := mha.NewCluster(4, 8, 2)
	prm := mha.Thor()
	m := 64 << 10
	mhaT := mha.MeasureAllgather(topo, prm, m, mha.MHAProfile())
	hpcx := mha.MeasureAllgather(topo, prm, m, mha.HPCXProfile())
	mvp := mha.MeasureAllgather(topo, prm, m, mha.MVAPICH2XProfile())
	if mhaT >= hpcx || mhaT >= mvp {
		t.Fatalf("MHA (%v) should beat HPC-X (%v) and MVAPICH2-X (%v)", mhaT, hpcx, mvp)
	}
}

func TestPublicAllreduce(t *testing.T) {
	topo := mha.NewCluster(2, 2, 2)
	w := mha.NewWorld(mha.Config{Topo: topo})
	n := topo.Size()
	err := w.Run(func(p *mha.Proc) {
		// 8*n bytes so chunks are uniform.
		buf := mha.NewBuf(8 * n)
		buf.Data()[p.Rank()*8] = 1 // distinct contribution per rank
		mha.Allreduce(p, w, buf, mha.SumF64())
		_ = buf
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicModelAndTuning(t *testing.T) {
	topo := mha.NewCluster(8, 32, 2)
	model := mha.NewModel(mha.Thor(), topo)
	if d := model.OffloadD(1 << 20); d <= 0 || d > 31 {
		t.Fatalf("OffloadD = %v", d)
	}
	if !model.RingBetterThanRD(256<<10) || model.RingBetterThanRD(64) {
		t.Fatal("RD/Ring selection wrong through the facade")
	}
	best, curve := mha.TuneOffload(mha.NewCluster(1, 4, 2), mha.Thor(), 1<<20, 4)
	if best <= 0 || len(curve) == 0 {
		t.Fatalf("tuner: d=%v curve=%d", best, len(curve))
	}
}

func TestPublicTuningTableRoundTrip(t *testing.T) {
	table := mha.BuildTuningTable(mha.NewCluster(2, 4, 2), mha.Thor(), []int{1 << 10, 256 << 10})
	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mha.LoadTuningTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != 2 {
		t.Fatalf("entries = %d", len(loaded.Entries))
	}
}

func TestPublicOtherCollectives(t *testing.T) {
	topo := mha.NewCluster(2, 2, 2)
	w := mha.NewWorld(mha.Config{Topo: topo})
	n := topo.Size()
	const m = 64
	err := w.Run(func(p *mha.Proc) {
		// Bcast from rank 1.
		b := mha.NewBuf(m)
		if p.Rank() == 1 {
			for i := range b.Data() {
				b.Data()[i] = 7
			}
		}
		mha.Bcast(p, w, 1, b)
		if b.Data()[0] != 7 {
			t.Errorf("rank %d: bcast failed", p.Rank())
		}
		// Alltoall of one byte blocks... use m-byte blocks.
		send := mha.NewBuf(n * m)
		for d := 0; d < n; d++ {
			send.Data()[d*m] = byte(10*p.Rank() + d)
		}
		recv := mha.NewBuf(n * m)
		mha.Alltoall(p, w, send, recv)
		for s := 0; s < n; s++ {
			if recv.Data()[s*m] != byte(10*s+p.Rank()) {
				t.Errorf("rank %d: alltoall block from %d wrong", p.Rank(), s)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicNUMA(t *testing.T) {
	topo := mha.Cluster{Nodes: 2, PPN: 4, HCAs: 2, Sockets: 2}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	w := mha.NewWorld(mha.Config{Topo: topo, Params: mha.NumaThor()})
	n := topo.Size()
	const m = 32
	err := w.Run(func(p *mha.Proc) {
		send := mha.NewBuf(m)
		send.Data()[0] = byte(p.Rank())
		recv := mha.NewBuf(n * m)
		mha.Allgather3Level(p, w, send, recv)
		for r := 0; r < n; r++ {
			if recv.Data()[r*m] != byte(r) {
				t.Errorf("rank %d: 3-level block %d wrong", p.Rank(), r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicTracer(t *testing.T) {
	rec := mha.NewTracer()
	topo := mha.NewCluster(2, 2, 2)
	w := mha.NewWorld(mha.Config{Topo: topo, Tracer: rec, Phantom: true})
	err := w.Run(func(p *mha.Proc) {
		mha.Allgather(p, w, mha.Phantom(1<<16), mha.Phantom(1<<16*4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	var sb bytes.Buffer
	if err := rec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() < 10 {
		t.Fatal("chrome trace empty")
	}
}

func TestPublicFaultInjection(t *testing.T) {
	sched, err := mha.ParseFaults("down node=0 rail=1 until=40us")
	if err != nil {
		t.Fatal(err)
	}
	topo := mha.NewCluster(2, 2, 2)
	n := topo.Size()
	const m = 128
	run := func(s *mha.FaultSchedule) (mha.Time, *mha.World) {
		w := mha.NewWorld(mha.Config{Topo: topo, Faults: s})
		var worst mha.Time
		err := w.Run(func(p *mha.Proc) {
			send := mha.NewBuf(m)
			for i := range send.Data() {
				send.Data()[i] = byte(p.Rank())
			}
			recv := mha.NewBuf(n * m)
			mha.Allgather(p, w, send, recv)
			for r := 0; r < n; r++ {
				if recv.Data()[r*m] != byte(r) {
					t.Errorf("rank %d: block %d corrupted under faults", p.Rank(), r)
				}
			}
			if p.Now() > worst {
				worst = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst, w
	}
	healthy, _ := run(nil)
	faulted, w := run(sched)
	if faulted < healthy {
		t.Fatalf("fault made the run faster: %v < %v", faulted, healthy)
	}
	stats := w.RailStats()
	if len(stats) != topo.Nodes*topo.HCAs {
		t.Fatalf("RailStats length = %d", len(stats))
	}
	// Programmatic construction and the random generator work through the
	// facade too.
	if _, err := mha.NewFaultSchedule(mha.Fault{Kind: mha.FaultDegrade,
		Node: mha.AllNodes, Rail: 1, Fraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	if mha.RandomFaults(3, 4, 2, 1_000_000).Len() == 0 {
		t.Fatal("random schedule is empty")
	}
}

func TestPublicExploration(t *testing.T) {
	rep, err := mha.Explore(mha.ExploreOptions{
		Algs: []string{"ring"}, Nodes: 2, PPN: 1, HCAs: 2, Msg: 4, FaultBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Counterexamples != 0 {
		t.Fatalf("exhaustive ring exploration unexpectedly dirty: %+v", rep)
	}
	if err := mha.ExploreReplay("alg=ring nodes=1 ppn=2 hcas=1 msg=4 fault=none sched=canonical"); err != nil {
		t.Fatalf("canonical schedule failed: %v", err)
	}
	if err := mha.ExploreReplay("alg=ring nodes=4 ppn=4"); err == nil {
		t.Fatal("16-rank spec accepted past the exhaustive limit")
	}
}

func TestPublicVerification(t *testing.T) {
	if err := mha.VerifyScenarioSpec("alg=mha nodes=2 ppn=2 hcas=2 msg=257 faults=none"); err != nil {
		t.Fatalf("healthy scenario failed: %v", err)
	}
	if err := mha.VerifyScenarioSpec("alg=nonsense nodes=2"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := mha.VerifyCampaign(10, 42); err != nil {
		t.Fatalf("campaign found violations on HEAD: %v", err)
	}
	// The teardown audit is available on any World.
	topo := mha.NewCluster(2, 2, 1)
	w := mha.NewWorld(mha.Config{Topo: topo})
	err := w.Run(func(p *mha.Proc) {
		send := mha.NewBuf(16)
		recv := mha.NewBuf(16 * topo.Size())
		mha.Allgather(p, w, send, recv)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.VerifyTeardown(); err != nil {
		t.Fatalf("clean allgather flagged at teardown: %v", err)
	}
}

func TestPublicIAllgatherAndMachines(t *testing.T) {
	m, ok := mha.MachineByName("thor")
	if !ok || m.Topo.Size() != 1024 {
		t.Fatalf("thor preset: %+v ok=%v", m, ok)
	}
	if len(mha.Machines()) < 5 {
		t.Fatal("machine catalog too small")
	}
	topo := mha.NewCluster(2, 2, 2)
	w := mha.NewWorld(mha.Config{Topo: topo})
	n := topo.Size()
	err := w.Run(func(p *mha.Proc) {
		send := mha.NewBuf(16)
		send.Data()[0] = byte(p.Rank())
		recv := mha.NewBuf(16 * n)
		req := mha.IAllgather(p, w.CommWorld(), send, recv)
		p.Compute(mha.Duration(10000)) // overlapped work
		req.Wait()
		for r := 0; r < n; r++ {
			if recv.Data()[r*16] != byte(r) {
				t.Errorf("rank %d: block %d wrong", p.Rank(), r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicClusterScheduler(t *testing.T) {
	topo := mha.NewCluster(4, 4, 2)
	jobs := mha.ClusterRandomJobs(42, 6, topo, 300*mha.Microsecond)
	res, err := mha.RunCluster(mha.ClusterConfig{
		Topo: topo, Policy: mha.ClusterRailAware, Payload: true,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) > 0 {
		t.Fatalf("byte-check failures: %v", res.Errors)
	}
	if len(res.Jobs) != len(jobs) || res.Makespan <= 0 {
		t.Fatalf("metrics incomplete: %d jobs, makespan %v", len(res.Jobs), res.Makespan)
	}
	for _, policy := range []string{mha.ClusterPacked, mha.ClusterSpread, mha.ClusterRailAware} {
		if _, err := mha.RunCluster(mha.ClusterConfig{Topo: topo, Policy: policy,
			SkipIsolated: true}, jobs); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}
